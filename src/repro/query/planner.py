"""Cost-based planning for spanner-algebra query expressions.

Every operator in the algebra can be executed two ways:

* **compile** — fold the whole subtree into one vset-automaton (the
  closure constructions of Section 2.2) and evaluate it once against the
  SLP-compressed document.  Cheap for unions and functional joins, and
  the compiled artefact is cacheable under its canonical plan text; but
  a lenient join of schemaless operands multiplies state counts by
  ``3^|shared|`` (see :func:`repro.spanners.algebra.join_lenient`), so
  the automaton can explode while the *relations* stay tiny.
* **materialize** — evaluate the operands to span relations and combine
  them tuple-by-tuple.  Cost is the product/sum of operand
  cardinalities, which the planner estimates from statistics cached by
  previous executions (:class:`repro.query.executor.QuerySession` keys
  them by canonical plan text and document).

:func:`plan_expression` chooses per node by comparing the two estimates,
and re-orders associative join chains greedily by estimated operand
cardinality — sound because the lenient join computes exactly the
compatible-merge relation join, which is associative and commutative.
Subtrees containing ``load(...)`` atoms or opaque registered spanners
have no automaton and always materialize.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.query import ast
from repro.query.ast import canonical_key

__all__ = ["PlanNode", "plan_expression", "DEFAULT_DOC_LENGTH"]

#: assumed document length (and default relation cardinality) when the
#: executor has no cached statistics for a subexpression yet
DEFAULT_DOC_LENGTH = 64

#: determinization of a difference's right operand is capped at this many
#: states in the estimate (the subset construction rarely gets near its
#: exponential worst case on the small automata we compile)
_DET_CAP = 4096


@functools.lru_cache(maxsize=256)
def _default_atom_automaton(source: str):
    from repro.regex.compile import spanner_from_regex

    spanner = spanner_from_regex(source)
    return getattr(spanner, "automaton", spanner)


@dataclass(frozen=True)
class PlanNode:
    """One node of a chosen physical plan.

    ``strategy`` is ``"compile"`` (this node and everything below it
    become a single cached vset-automaton; ``children`` is empty),
    ``"materialize"`` (evaluate ``children``, combine relations),
    ``"scan"`` (a registered spanner evaluated through the store), or
    ``"load"`` (a relation read from disk)."""

    strategy: str
    expr: ast.Expr
    op: str
    children: tuple["PlanNode", ...] = ()
    cost: float = 0.0
    est_states: int = 0
    est_card: int = 0
    variables: frozenset[str] = field(default_factory=frozenset)
    functional: bool = False
    key: str = ""

    def describe(self) -> str:
        """Indented plan text (the REPL's ``\\plan`` output)."""
        lines: list[str] = []

        def walk(node: "PlanNode", prefix: str, tail: str) -> None:
            note = f"states~{node.est_states}" if node.strategy == "compile" else f"card~{node.est_card}"
            lines.append(
                f"{prefix}{tail}{node.strategy}:{node.op} "
                f"cost={node.cost:.0f} {note}"
            )
            child_prefix = prefix + ("   " if not tail else ("   " if tail == "└─ " else "│  "))
            for index, child in enumerate(node.children):
                last = index == len(node.children) - 1
                walk(child, child_prefix, "└─ " if last else "├─ ")

        walk(self, "", "")
        return "\n".join(lines)


class _Estimate:
    """Static annotation of a (resolved) expression subtree."""

    __slots__ = ("variables", "states", "compile_cost", "compilable", "functional")

    def __init__(self, variables, states, compile_cost, compilable, functional):
        self.variables = frozenset(variables)
        self.states = int(states)
        self.compile_cost = float(compile_cost)
        self.compilable = bool(compilable)
        self.functional = bool(functional)


def _estimate(expr: ast.Expr, atom_automaton) -> _Estimate:
    if isinstance(expr, ast.RegexAtom):
        automaton = atom_automaton(expr.source)
        states = automaton.nfa.num_states
        return _Estimate(automaton.variables, states, states, True, automaton.functional)
    if isinstance(expr, (ast.NameRef, ast.Load)):
        return _Estimate((), 0, 0.0, False, False)
    if isinstance(expr, (ast.Project, ast.Rename)):
        inner = _estimate(expr.inner, atom_automaton)
        if isinstance(expr, ast.Project):
            variables = inner.variables & set(expr.variables)
        else:
            mapping = dict(expr.renaming)
            variables = {mapping.get(v, v) for v in inner.variables}
        return _Estimate(
            variables, inner.states, inner.compile_cost, inner.compilable, inner.functional
        )
    left = _estimate(expr.left, atom_automaton)
    right = _estimate(expr.right, atom_automaton)
    compilable = left.compilable and right.compilable
    if isinstance(expr, ast.Union):
        states = left.states + right.states + 1
        return _Estimate(
            left.variables | right.variables,
            states,
            left.compile_cost + right.compile_cost + states,
            compilable,
            left.functional and right.functional and left.variables == right.variables,
        )
    if isinstance(expr, ast.Join):
        shared = left.variables & right.variables
        lenient = not (left.functional and right.functional) and shared
        factor = 3 ** len(shared) if lenient else 1
        states = max(1, left.states) * max(1, right.states) * factor
        return _Estimate(
            left.variables | right.variables,
            states,
            left.compile_cost + right.compile_cost + states,
            compilable,
            left.functional and right.functional,
        )
    if isinstance(expr, ast.Difference):
        det = min(2 ** min(right.states, 12), _DET_CAP)
        states = max(1, left.states) * det
        return _Estimate(
            left.variables,
            states,
            left.compile_cost + right.compile_cost + states,
            compilable,
            left.functional,
        )
    raise TypeError(f"not a query expression: {expr!r}")  # pragma: no cover


def _card(expr: ast.Expr, stats, doc_length, atom_automaton) -> int:
    """Estimated result cardinality, preferring cached statistics."""
    known = stats.get(canonical_key(expr))
    if known is not None:
        return max(1, int(known))
    if isinstance(expr, (ast.RegexAtom, ast.NameRef, ast.Load)):
        return max(1, doc_length)
    if isinstance(expr, (ast.Project, ast.Rename)):
        return _card(expr.inner, stats, doc_length, atom_automaton)
    left = _card(expr.left, stats, doc_length, atom_automaton)
    right = _card(expr.right, stats, doc_length, atom_automaton)
    if isinstance(expr, ast.Union):
        return left + right
    if isinstance(expr, ast.Join):
        return max(left, right)
    return left  # Difference


def _reorder_joins(expr: ast.Expr, stats, doc_length, atom_automaton) -> ast.Expr:
    """Greedily re-order flattened join chains by estimated cardinality."""
    if isinstance(expr, (ast.RegexAtom, ast.NameRef, ast.Load)):
        return expr
    if isinstance(expr, ast.Project):
        return ast.Project(
            pos=expr.pos,
            inner=_reorder_joins(expr.inner, stats, doc_length, atom_automaton),
            variables=expr.variables,
        )
    if isinstance(expr, ast.Rename):
        return ast.Rename(
            pos=expr.pos,
            inner=_reorder_joins(expr.inner, stats, doc_length, atom_automaton),
            renaming=expr.renaming,
        )
    if isinstance(expr, ast.Union):
        return ast.Union(
            pos=expr.pos,
            left=_reorder_joins(expr.left, stats, doc_length, atom_automaton),
            right=_reorder_joins(expr.right, stats, doc_length, atom_automaton),
        )
    if isinstance(expr, ast.Difference):
        return ast.Difference(
            pos=expr.pos,
            left=_reorder_joins(expr.left, stats, doc_length, atom_automaton),
            right=_reorder_joins(expr.right, stats, doc_length, atom_automaton),
        )
    # Join: flatten the chain, recurse into operands, sort cheap-first.
    operands: list[ast.Expr] = []

    def flatten(node: ast.Expr) -> None:
        if isinstance(node, ast.Join):
            flatten(node.left)
            flatten(node.right)
        else:
            operands.append(_reorder_joins(node, stats, doc_length, atom_automaton))

    flatten(expr)
    # stable sort: operands with smaller estimated relations join first,
    # shrinking every intermediate product; ties keep written order
    operands.sort(key=lambda e: _card(e, stats, doc_length, atom_automaton))
    result = operands[0]
    for operand in operands[1:]:
        result = ast.Join(pos=expr.pos, left=result, right=operand)
    return result


def plan_expression(
    expr: ast.Expr,
    *,
    stats=None,
    doc_length: int = DEFAULT_DOC_LENGTH,
    atom_automaton=None,
    reorder: bool = True,
) -> PlanNode:
    """Choose a physical plan for *expr* (names must be resolved already).

    *stats* maps canonical plan text → observed cardinality for the
    target document; *doc_length* seeds default estimates.  With
    ``reorder=False`` the written join order is kept (the naive
    comparison baseline in the benchmarks)."""
    stats = stats or {}
    atom_automaton = atom_automaton or _default_atom_automaton
    doc_length = max(1, int(doc_length))
    if reorder:
        expr = _reorder_joins(expr, stats, doc_length, atom_automaton)
    return _plan(expr, stats, doc_length, atom_automaton)


def _op_name(expr: ast.Expr) -> str:
    return type(expr).__name__.lower().replace("atom", "")


def _plan(expr: ast.Expr, stats, doc_length, atom_automaton) -> PlanNode:
    est = _estimate(expr, atom_automaton)
    card = _card(expr, stats, doc_length, atom_automaton)
    key = canonical_key(expr)
    if isinstance(expr, ast.Load):
        return PlanNode("load", expr, "load", (), float(card), 0, card, est.variables, False, key)
    if isinstance(expr, ast.NameRef):
        return PlanNode("scan", expr, "scan", (), float(card), 0, card, est.variables, False, key)
    if isinstance(expr, ast.RegexAtom):
        cost = est.compile_cost + doc_length
        return PlanNode(
            "compile", expr, "regex", (), cost, est.states, card,
            est.variables, est.functional, key,
        )

    if isinstance(expr, (ast.Project, ast.Rename)):
        children = (_plan(expr.inner, stats, doc_length, atom_automaton),)
        combine = float(children[0].est_card)
    else:
        children = (
            _plan(expr.left, stats, doc_length, atom_automaton),
            _plan(expr.right, stats, doc_length, atom_automaton),
        )
        if isinstance(expr, ast.Join):
            combine = float(children[0].est_card) * float(children[1].est_card)
        else:
            combine = float(children[0].est_card) + float(children[1].est_card)
    materialize_cost = sum(child.cost for child in children) + combine

    if est.compilable:
        compile_cost = est.compile_cost + doc_length
        if compile_cost <= materialize_cost:
            return PlanNode(
                "compile", expr, _op_name(expr), (), compile_cost, est.states,
                card, est.variables, est.functional, key,
            )
    return PlanNode(
        "materialize", expr, _op_name(expr), children, materialize_cost,
        est.states, card, est.variables, est.functional, key,
    )
