"""The interactive query shell (``python -m repro repl``) and the
non-interactive script runner behind ``repro query -f``.

The REPL is line-oriented: each line is a statement of the query
language (``DOC``, ``LET``, or a bare expression), or a backslash
command:

======================  ====================================================
``\\help``               list commands
``\\plan``               show the plan of the last query
``\\plan <expr>``        plan an expression without executing it
``\\plan on|off``        auto-print the plan after every query
``\\timing on|off``      print wall-clock time after every query
``\\doc <name>``         select the default document
``\\docs``               list stored documents
``\\spanners``           list registered spanners
``\\q``                  quit (also ``\\quit``, EOF)
======================  ====================================================

Errors — syntax, schema, budget — print as one ``error:`` line and the
session continues.  :func:`run_script` runs a ``.rq`` file with
*recovering* parsing (every syntax error is reported, every statement
that parses still runs) and fully deterministic output, which is what
the CI golden-session lane diffs against a committed transcript.
"""

from __future__ import annotations

import sys

from repro.errors import SpanlibError
from repro.query.executor import QuerySession, StatementResult
from repro.query.parser import parse_program

__all__ = ["Repl", "run_script"]

_BANNER = "repro query shell — \\help for commands, \\q to quit"


class Repl:
    """Interactive shell over a :class:`~repro.query.executor.QuerySession`."""

    def __init__(
        self,
        db=None,
        *,
        stdin=None,
        stdout=None,
        base_dir: str = ".",
        budget=None,
    ) -> None:
        self.session = QuerySession(db, base_dir=base_dir, budget=budget)
        self.stdin = stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.show_plan = False
        self.show_timing = False
        self.prompt = "rq> "

    # ------------------------------------------------------------------
    def _say(self, text: str = "") -> None:
        print(text, file=self.stdout)

    def _read_line(self) -> str | None:
        if self.stdin is not None:
            line = self.stdin.readline()
            return line.rstrip("\n") if line else None
        try:
            return input(self.prompt)
        except EOFError:
            return None

    def run(self) -> int:
        """The interactive loop; returns a process exit code."""
        if self.stdin is None:  # pragma: no cover - interactive only
            try:
                import readline  # noqa: F401  (history/editing side effect)
            except ImportError:
                pass
        self._say(_BANNER)
        while True:
            line = self._read_line()
            if line is None:
                self._say()
                return 0
            if not line.strip():
                continue
            if self.handle_line(line) is False:
                return 0

    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> bool:
        """Process one input line; returns False when the REPL should exit."""
        stripped = line.strip()
        if stripped.startswith("\\"):
            return self._command(stripped)
        try:
            statements, _ = parse_program(line, recover=False)
            for statement in statements:
                self._report(self.session.execute_statement(statement))
        except SpanlibError as exc:
            self._say(f"error: {exc}")
        return True

    def _report(self, result: StatementResult) -> None:
        if self.show_plan and result.plan is not None:
            self._say(result.plan.describe())
        if result.relation is not None:
            self._say(result.relation.to_table())
            count = len(result.relation)
            self._say(f"({count} tuple{'s' if count != 1 else ''})")
        elif result.document is not None:
            self._say(f"document {result.document!r} selected")
        if self.show_timing:
            self._say(f"time: {result.elapsed * 1000.0:.1f} ms")

    # ------------------------------------------------------------------
    def _command(self, line: str) -> bool:
        name, _, argument = line[1:].partition(" ")
        name = name.lower()
        argument = argument.strip()
        if name in ("q", "quit", "exit"):
            return False
        if name == "help":
            self._say(__doc__.split("======", 1)[0].strip())
            self._say(
                "\\help \\plan [expr|on|off] \\timing [on|off] "
                "\\doc <name> \\docs \\spanners \\q"
            )
            return True
        if name == "plan":
            return self._plan_command(argument)
        if name == "timing":
            self.show_timing = argument != "off" if argument else not self.show_timing
            self._say(f"timing {'on' if self.show_timing else 'off'}")
            return True
        if name == "doc":
            if not argument:
                self._say(f"document: {self.session.default_document or '(none)'}")
            elif argument not in self.session.db.documents():
                self._say(f"error: no document named {argument!r}")
            else:
                self.session.default_document = argument
                self._say(f"document {argument!r} selected")
            return True
        if name == "docs":
            names = self.session.db.documents()
            self._say("\n".join(names) if names else "(no documents)")
            return True
        if name == "spanners":
            names = self.session.db.spanners()
            self._say("\n".join(names) if names else "(no spanners)")
            return True
        self._say(f"error: unknown command \\{name} (try \\help)")
        return True

    def _plan_command(self, argument: str) -> bool:
        if argument in ("on", "off"):
            self.show_plan = argument == "on"
            self._say(f"plan display {'on' if self.show_plan else 'off'}")
        elif argument:
            try:
                self._say(self.session.plan(argument).describe())
            except SpanlibError as exc:
                self._say(f"error: {exc}")
        elif self.session.last_plan is None:
            self._say("no plan yet — run a query first")
        else:
            self._say(self.session.last_plan.describe())
        return True


def run_script(
    path: str,
    db=None,
    *,
    out=None,
    base_dir: str | None = None,
    budget=None,
) -> int:
    """Run a ``.rq`` script; returns 0 iff no error of any kind occurred.

    Parsing recovers: every syntax error is reported (with position and
    line) and every statement that parses still executes, so a script
    author sees all problems in one run.  Output is deterministic —
    tables in sorted row order, no timings — so a transcript can be
    committed and diffed in CI.
    """
    out = out if out is not None else sys.stdout
    try:
        with open(path, "r", encoding="utf-8") as stream:
            text = stream.read()
    except OSError as exc:
        print(f"error: cannot read script {path!r}: {exc}", file=out)
        return 2
    if base_dir is None:
        import os

        base_dir = os.path.dirname(os.path.abspath(path))
    session = QuerySession(db, base_dir=base_dir, budget=budget)
    failed = False
    try:
        statements, errors = parse_program(text, recover=True)
    except SpanlibError as exc:  # lexer errors surface before recovery
        print(f"error: {exc}", file=out)
        return 2
    for error in errors:
        failed = True
        print(f"error: {error}", file=out)
    for statement in statements:
        try:
            result = session.execute_statement(statement, budget)
        except SpanlibError as exc:
            failed = True
            print(f"error: {exc}", file=out)
            continue
        if result.relation is not None:
            print(result.relation.to_table(), file=out)
            count = len(result.relation)
            print(f"({count} tuple{'s' if count != 1 else ''})", file=out)
    return 2 if failed else 0
