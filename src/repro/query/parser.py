"""Recursive-descent parser for the spanner-algebra query language.

Grammar (see ``docs/QUERY_LANGUAGE.md`` for the prose version)::

    program    := (statement (NEWLINE | ';')*)* EOF
    statement  := 'LET' name '=' expr
                | 'DOC' name '=' STRING
                | expr ('ON' name)?
    expr       := diff ('∪' diff)*                  # union, lowest
    diff       := joinexpr ('\\' joinexpr)*          # difference
    joinexpr   := postfix ('⋈' postfix)*             # join, highest
    postfix    := atom ('[' STRING ']')*             # e[regex] sugar
    atom       := STRING                             # regex-formula spanner
                | name                               # LET binding / spanner
                | 'load' '(' STRING ')'
                | ('π'|'pi') '_'? '{' names '}' '(' expr ')'
                | ('ρ'|'rho') '_'? '{' renames '}' '(' expr ')'
                | '(' expr ')'

All errors are :class:`~repro.errors.QuerySyntaxError` with the exact
position and line.  :func:`parse_program` optionally *recovers* from a
syntax error by skipping to the next statement boundary and continuing,
returning every error alongside the statements that did parse — the REPL
and script mode report all of them instead of dying on the first.
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.query import ast
from repro.query.lexer import Token, tokenize

__all__ = ["parse_expression", "parse_program"]

_STATEMENT_END = {"NEWLINE", "SEMI", "EOF"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def take(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def error(self, message: str, token: Token | None = None) -> QuerySyntaxError:
        token = token or self.peek()
        return QuerySyntaxError(message, token.pos, token.line)

    def expect(self, kind: str, what: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            found = repr(token.text) if token.kind != "EOF" else "end of input"
            raise self.error(f"expected {what}, found {found}", token)
        return self.take()

    def skip_newlines(self) -> None:
        while self.peek().kind in ("NEWLINE", "SEMI"):
            self.take()

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def statement(self) -> ast.Statement:
        token = self.peek()
        if token.kind == "LET":
            self.take()
            name = self.expect("NAME", "a name to bind")
            self.expect("EQUALS", "'=' after the LET name")
            expr = self.expression()
            return ast.Let(pos=token.pos, name=name.text, expr=expr)
        if token.kind == "DOC":
            self.take()
            name = self.expect("NAME", "a document name")
            self.expect("EQUALS", "'=' after the document name")
            text = self.expect("STRING", "a quoted document text")
            return ast.DocStatement(pos=token.pos, name=name.text, text=text.text)
        expr = self.expression()
        document = None
        if self.peek().kind == "ON":
            self.take()
            document = self.expect("NAME", "a document name after ON").text
        return ast.Query(pos=token.pos, expr=expr, document=document)

    def end_of_statement(self) -> None:
        token = self.peek()
        if token.kind not in _STATEMENT_END:
            raise self.error(
                f"expected end of statement, found {token.text!r}", token
            )

    # ------------------------------------------------------------------
    # expressions (precedence climbing: union < difference < join)
    # ------------------------------------------------------------------
    def expression(self) -> ast.Expr:
        left = self.difference()
        while self.peek().kind == "UNION":
            op = self.take()
            right = self.difference()
            left = ast.Union(pos=op.pos, left=left, right=right)
        return left

    def difference(self) -> ast.Expr:
        left = self.join()
        while self.peek().kind == "DIFF":
            op = self.take()
            right = self.join()
            left = ast.Difference(pos=op.pos, left=left, right=right)
        return left

    def join(self) -> ast.Expr:
        left = self.postfix()
        while self.peek().kind == "JOIN":
            op = self.take()
            right = self.postfix()
            left = ast.Join(pos=op.pos, left=left, right=right)
        return left

    def postfix(self) -> ast.Expr:
        expr = self.atom()
        while self.peek().kind == "LBRACKET":
            bracket = self.take()
            regex = self.expect("STRING", "a quoted regex inside [...]")
            self.expect("RBRACKET", "']' closing the regex filter")
            expr = ast.Join(
                pos=bracket.pos,
                left=expr,
                right=ast.RegexAtom(pos=regex.pos, source=regex.text),
            )
        return expr

    def atom(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "STRING":
            self.take()
            return ast.RegexAtom(pos=token.pos, source=token.text)
        if token.kind == "NAME":
            self.take()
            return ast.NameRef(pos=token.pos, name=token.text)
        if token.kind == "LOAD":
            self.take()
            self.expect("LPAREN", "'(' after load")
            path = self.expect("STRING", "a quoted file path")
            self.expect("RPAREN", "')' closing load(...)")
            return ast.Load(pos=token.pos, path=path.text)
        if token.kind == "PI":
            self.take()
            variables = self.variable_list("projection")
            self.expect("LPAREN", "'(' after the projection variable list")
            inner = self.expression()
            self.expect("RPAREN", "')' closing the projection")
            return ast.Project(pos=token.pos, inner=inner, variables=variables)
        if token.kind == "RHO":
            self.take()
            renaming = self.rename_list()
            self.expect("LPAREN", "'(' after the renaming list")
            inner = self.expression()
            self.expect("RPAREN", "')' closing the renaming")
            return ast.Rename(pos=token.pos, inner=inner, renaming=renaming)
        if token.kind == "LPAREN":
            self.take()
            inner = self.expression()
            self.expect("RPAREN", "')' closing the group")
            return inner
        found = repr(token.text) if token.kind != "EOF" else "end of input"
        raise self.error(f"expected an expression, found {found}", token)

    def _open_brace(self, what: str) -> None:
        # tolerate the paper's `π_{x,y}` spelling: a bare '_' before '{'
        if self.peek().kind == "NAME" and self.peek().text == "_":
            self.take()
        self.expect("LBRACE", f"'{{' opening the {what} list")

    def variable_list(self, what: str) -> tuple[str, ...]:
        self._open_brace(what)
        names: list[str] = []
        while True:
            names.append(self.expect("NAME", "a variable name").text)
            if self.peek().kind == "COMMA":
                self.take()
                continue
            break
        self.expect("RBRACE", f"'}}' closing the {what} list")
        return tuple(names)

    def rename_list(self) -> tuple[tuple[str, str], ...]:
        self._open_brace("renaming")
        pairs: list[tuple[str, str]] = []
        while True:
            old = self.expect("NAME", "a variable to rename")
            self.expect("ARROW", "'->' between old and new variable")
            new = self.expect("NAME", "the new variable name")
            pairs.append((old.text, new.text))
            if self.peek().kind == "COMMA":
                self.take()
                continue
            break
        self.expect("RBRACE", "'}' closing the renaming list")
        return tuple(pairs)


def parse_expression(text: str) -> ast.Expr:
    """Parse a single expression (no LET/DOC, no ON clause)."""
    parser = _Parser(tokenize(text))
    parser.skip_newlines()
    expr = parser.expression()
    parser.skip_newlines()
    token = parser.peek()
    if token.kind != "EOF":
        raise parser.error(f"unexpected trailing input {token.text!r}", token)
    return expr


def parse_program(
    text: str, recover: bool = False
) -> tuple[list[ast.Statement], list[QuerySyntaxError]]:
    """Parse a statement sequence.

    With ``recover=False`` the first syntax error raises.  With
    ``recover=True`` the parser synchronises at the next statement
    boundary (newline or ``;``) and keeps going, returning
    ``(statements, errors)`` so interactive surfaces can report every
    problem in a script while still running the statements that parse.
    """
    parser = _Parser(tokenize(text))
    statements: list[ast.Statement] = []
    errors: list[QuerySyntaxError] = []
    while True:
        parser.skip_newlines()
        if parser.peek().kind == "EOF":
            break
        try:
            statement = parser.statement()
            parser.end_of_statement()
        except QuerySyntaxError as exc:
            if not recover:
                raise
            errors.append(exc)
            while parser.peek().kind not in _STATEMENT_END:
                parser.take()
            continue
        statements.append(statement)
    return statements, errors
