"""`repro.query`: a relational-algebra query language over spanners.

The paper's algebra (union, natural join, projection, renaming,
difference over regular spanners) and *Complexity Bounds for Relational
Algebra over Document Spanners* motivate a query surface whose cost
depends critically on operator order and on whether operands are
*functional*.  This package gives `repro` that surface — a lexer →
parser → planner → executor pipeline modeled on ``robertchase/codd`` —
so the system serves arbitrary analyst workloads, not one regex at a
time:

* :mod:`repro.query.lexer` / :mod:`repro.query.parser` — a hand-written
  lexer and recursive-descent parser for the grammar of
  ``docs/QUERY_LANGUAGE.md`` (``LET name = e``, ``π{x,y}(e)``,
  ``e1 ⋈ e2``, ``e1 ∪ e2``, ``e1 \\ e2``, ``e[regex]``, ``load(...)``),
  raising typed :class:`~repro.errors.QuerySyntaxError` with positions;
* :mod:`repro.query.planner` — a cost-based planner that chooses, per
  operator, between *compiling* the subtree into one vset-automaton and
  *materializing* operand relations, using the paper's bounds
  (state-count × ``3^|shared|`` for lenient joins; functional operands
  take the strict product) plus cached cardinality statistics, and
  reorders associative join chains by estimated intermediate size;
* :mod:`repro.query.executor` — :class:`QuerySession` evaluates plans
  through the existing :class:`~repro.db.SpannerDB` stack (compiled
  subtrees run on the SLP-compressed documents and are interned in the
  shared :func:`~repro.kernels.plan.plan_cache` under their canonical
  plan text), charging a :class:`~repro.util.Budget` per operator;
* :mod:`repro.query.repl` — the interactive ``python -m repro repl``
  (``\\plan``, ``\\timing``, …) and the ``repro query -f`` script mode.

The differential contract: every expression evaluated through the
planner returns exactly the relation of naive bottom-up materialization
over the algebra operators (:func:`evaluate_query_naive`), asserted by a
200-seed fuzz lane over random expressions and unicode documents.
"""

from repro.query.ast import (
    Difference,
    Join,
    Let,
    Load,
    NameRef,
    Project,
    RegexAtom,
    Rename,
    Union,
    canonical_key,
)
from repro.query.executor import QuerySession, evaluate_query, evaluate_query_naive
from repro.query.lexer import Token, tokenize
from repro.query.parser import parse_expression, parse_program
from repro.query.planner import PlanNode, plan_expression
from repro.query.repl import Repl, run_script

__all__ = [
    "Difference",
    "Join",
    "Let",
    "Load",
    "NameRef",
    "PlanNode",
    "Project",
    "QuerySession",
    "RegexAtom",
    "Rename",
    "Repl",
    "Token",
    "Union",
    "canonical_key",
    "evaluate_query",
    "evaluate_query_naive",
    "parse_expression",
    "parse_program",
    "plan_expression",
    "run_script",
    "tokenize",
]
