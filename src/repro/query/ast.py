"""AST node types for the spanner-algebra query language.

Every node carries ``pos`` — the 0-based offset of the construct in the
query text — so the planner and executor can report errors with the same
positional precision as the parser.

:func:`canonical_key` renders an expression into a canonical plan text:
operand order is preserved (join order is chosen by the *planner*, after
name resolution), ``LET``-bound names are resolved away by the caller
before keying, and regex atoms appear verbatim.  Two textually different
queries that resolve to the same algebra tree share one key, which is
what lets the :func:`repro.kernels.plan.plan_cache` warm whole queries
like single spanners.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr",
    "RegexAtom",
    "NameRef",
    "Load",
    "Project",
    "Rename",
    "Join",
    "Union",
    "Difference",
    "Statement",
    "Let",
    "DocStatement",
    "Query",
    "canonical_key",
]


@dataclass(frozen=True)
class Expr:
    """Base class of query expressions."""

    pos: int = field(default=0, compare=False)


@dataclass(frozen=True)
class RegexAtom(Expr):
    """A spanner literal: a quoted regex-formula, e.g. ``'!x{a+}b'``."""

    source: str = ""


@dataclass(frozen=True)
class NameRef(Expr):
    """A reference to a ``LET``-bound expression or registered spanner."""

    name: str = ""


@dataclass(frozen=True)
class Load(Expr):
    """``load('relation.csv')`` — a materialized span relation from disk
    (CSV with a variable-name header and ``start:end`` cells, the format
    of :meth:`repro.core.spans.SpanRelation.to_csv`)."""

    path: str = ""


@dataclass(frozen=True)
class Project(Expr):
    """Projection ``π{x,y}(e)``."""

    inner: Expr = None  # type: ignore[assignment]
    variables: tuple[str, ...] = ()


@dataclass(frozen=True)
class Rename(Expr):
    """Renaming ``ρ{x->y}(e)`` (injective on the schema)."""

    inner: Expr = None  # type: ignore[assignment]
    renaming: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class Join(Expr):
    """Natural join ``e1 ⋈ e2`` (lenient schemaless semantics of [27];
    coincides with the strict join when both operands are functional).
    ``e[regex]`` is parsed as ``Join(e, RegexAtom(regex))``."""

    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Union(Expr):
    """Spanner union ``e1 ∪ e2`` (schemas merge)."""

    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Difference(Expr):
    """Spanner difference ``e1 \\ e2`` (equal schemas required)."""

    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Statement:
    """Base class of statements (one per line or ``;``-separated)."""

    pos: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Let(Statement):
    """``LET name = e`` — bind *name* to an expression in the session."""

    name: str = ""
    expr: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class DocStatement(Statement):
    """``DOC name = 'text'`` — add (or replace) a document in the store."""

    name: str = ""
    text: str = ""


@dataclass(frozen=True)
class Query(Statement):
    """A bare expression, optionally with an ``ON document`` clause —
    evaluate and emit the relation."""

    expr: Expr = None  # type: ignore[assignment]
    document: str | None = None


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def canonical_key(expr: Expr) -> str:
    """Canonical plan text for *expr* (see module docstring).

    :class:`NameRef` nodes must be resolved away (the executor inlines
    ``LET`` bindings before keying); an unresolved reference keys under
    its name, which is correct for spanners registered on the store —
    their relation is part of the store's state, not the plan's.
    """
    if isinstance(expr, RegexAtom):
        return f"regex({_quote(expr.source)})"
    if isinstance(expr, NameRef):
        return f"name({expr.name})"
    if isinstance(expr, Load):
        return f"load({_quote(expr.path)})"
    if isinstance(expr, Project):
        inner = canonical_key(expr.inner)
        return f"pi{{{','.join(expr.variables)}}}({inner})"
    if isinstance(expr, Rename):
        pairs = ",".join(f"{a}->{b}" for a, b in expr.renaming)
        return f"rho{{{pairs}}}({canonical_key(expr.inner)})"
    if isinstance(expr, Join):
        return f"join({canonical_key(expr.left)},{canonical_key(expr.right)})"
    if isinstance(expr, Union):
        return f"union({canonical_key(expr.left)},{canonical_key(expr.right)})"
    if isinstance(expr, Difference):
        return f"diff({canonical_key(expr.left)},{canonical_key(expr.right)})"
    raise TypeError(f"not a query expression: {expr!r}")  # pragma: no cover
