"""Hand-written lexer for the spanner-algebra query language.

Tokens carry their 0-based ``pos`` (offset into the full text) and
1-based ``line``, so every downstream error — lexer, parser, executor —
points at an exact location.  String literals use single or double
quotes with ``\\`` escapes (only ``\\'``, ``\\"`` and ``\\\\`` are
special; everything else passes through verbatim, because the payload is
usually a spanner regex with its own backslash escapes).

Operator spellings come in both the paper's unicode (``π`` ``ρ`` ``⋈``
``∪``) and plain-ASCII keyword forms (``pi`` ``rho`` ``join``
``union``); ``\\`` / ``minus`` is the difference operator.  Keywords are
recognised case-insensitively; identifiers stay case-sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuerySyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: keyword spellings (lower-cased) → canonical token kind
KEYWORDS = {
    "let": "LET",
    "doc": "DOC",
    "on": "ON",
    "load": "LOAD",
    "pi": "PI",
    "project": "PI",
    "rho": "RHO",
    "rename": "RHO",
    "join": "JOIN",
    "union": "UNION",
    "minus": "DIFF",
}

_SYMBOLS = {
    "π": "PI",
    "ρ": "RHO",
    "⋈": "JOIN",
    "∪": "UNION",
    "\\": "DIFF",
    "=": "EQUALS",
    "(": "LPAREN",
    ")": "RPAREN",
    "{": "LBRACE",
    "}": "RBRACE",
    "[": "LBRACKET",
    "]": "RBRACKET",
    ",": "COMMA",
    ";": "SEMI",
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CONT = _NAME_START | set("0123456789")


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` (see module source), ``text`` (the
    payload: identifier spelling or decoded string literal), ``pos``
    (0-based offset), ``line`` (1-based)."""

    kind: str
    text: str
    pos: int
    line: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r}, pos={self.pos})"


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`QuerySyntaxError` on bad input.

    Newlines produce ``NEWLINE`` tokens (statements are line-oriented);
    ``#`` and ``--`` start comments running to end of line.  The list
    always ends with one ``EOF`` token.
    """
    tokens: list[Token] = []
    i, line = 0, 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            tokens.append(Token("NEWLINE", "\n", i, line))
            i += 1
            line += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#" or text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "-" and text.startswith("->", i):
            tokens.append(Token("ARROW", "->", i, line))
            i += 2
            continue
        if ch in "'\"":
            quote, start = ch, i
            i += 1
            chars: list[str] = []
            while True:
                if i >= n or text[i] == "\n":
                    raise QuerySyntaxError(
                        f"unterminated string literal (opened with {quote})",
                        start,
                        line,
                    )
                if text[i] == "\\" and i + 1 < n and text[i + 1] in ("\\", "'", '"'):
                    chars.append(text[i + 1])
                    i += 2
                    continue
                if text[i] == quote:
                    i += 1
                    break
                chars.append(text[i])
                i += 1
            tokens.append(Token("STRING", "".join(chars), start, line))
            continue
        if ch in _SYMBOLS:
            tokens.append(Token(_SYMBOLS[ch], ch, i, line))
            i += 1
            continue
        if ch in _NAME_START:
            start = i
            while i < n and text[i] in _NAME_CONT:
                i += 1
            word = text[start:i]
            kind = KEYWORDS.get(word.lower(), "NAME")
            tokens.append(Token(kind, word, start, line))
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", i, line)
    tokens.append(Token("EOF", "", n, line))
    return tokens
