"""Execution of planned query expressions against a :class:`SpannerDB`.

:class:`QuerySession` is the stateful surface behind the REPL, the
``repro query`` CLI, and :meth:`repro.serve.SpannerService.query_expression`:
it holds ``LET`` bindings, the target store, per-document cardinality
statistics (fed back into the planner after every execution), and the
last plan for ``\\plan`` introspection.

Compiled subtrees are interned in the process-wide
:func:`repro.kernels.plan.plan_cache` under ``"query:" + canonical plan
text``, so a repeated analyst query skips parsing, planning *and*
automaton construction and goes straight to the warm evaluator — the
same warm-hit economics single registered spanners already enjoy.

:func:`evaluate_query_naive` is the differential reference: bottom-up,
left-to-right materialization over the *decompressed* document text,
with atoms evaluated by the naive enumeration of
:mod:`repro.enumeration.naive` — machinery disjoint from the
SLP/compiled path.  The fuzz suite asserts the planner's answer equals
the reference on every seed.
"""

from __future__ import annotations

import csv
import os
import time
from dataclasses import dataclass

from repro import obs
from repro.core.spans import Span, SpanRelation, SpanTuple
from repro.db import SpannerDB
from repro.errors import QueryError
from repro.kernels.plan import CompiledPlan, plan_cache
from repro.query import ast
from repro.query.ast import canonical_key
from repro.query.parser import parse_expression, parse_program
from repro.query.planner import (
    DEFAULT_DOC_LENGTH,
    PlanNode,
    _default_atom_automaton,
    plan_expression,
)

__all__ = [
    "QuerySession",
    "StatementResult",
    "evaluate_query",
    "evaluate_query_naive",
    "load_relation",
]

_ASCII_DIGITS = frozenset("0123456789")


def _span_from_cell(cell: str, path: str) -> Span:
    start, sep, end = cell.partition(":")
    if (
        not sep
        or not start
        or not end
        or any(ch not in _ASCII_DIGITS for ch in start + end)
    ):
        raise QueryError(
            f"malformed span cell {cell!r} in {path!r}: expected ASCII 'start:end'"
        )
    return Span(int(start), int(end))


def load_relation(path: str, base_dir: str = ".") -> SpanRelation:
    """Read a span relation from the CSV format of
    :meth:`~repro.core.spans.SpanRelation.to_csv` (header of variable
    names; ``start:end`` cells, empty for undefined)."""
    full = path if os.path.isabs(path) else os.path.join(base_dir, path)
    try:
        with open(full, "r", encoding="utf-8") as stream:
            rows = list(csv.reader(stream))
    except OSError as exc:
        raise QueryError(f"cannot load relation from {path!r}: {exc}") from None
    if not rows:
        raise QueryError(f"relation file {path!r} is empty (no header row)")
    header = rows[0]
    if len(set(header)) != len(header) or any(not name for name in header):
        raise QueryError(f"relation file {path!r} has a malformed header {header!r}")
    tuples = []
    for row in rows[1:]:
        if len(row) != len(header):
            raise QueryError(
                f"relation file {path!r}: row {row!r} does not match header width"
            )
        items = [
            (var, _span_from_cell(cell, path))
            for var, cell in zip(header, row)
            if cell
        ]
        tuples.append(SpanTuple(items))
    return SpanRelation(header, tuples)


def _join_automata(left, right, budget=None):
    """The query language's join on automata: lenient semantics, with the
    strict product fast path when it provably coincides (no shared
    variables, or both operands functional)."""
    from repro.spanners.algebra import join_lenient

    shared = left.variables & right.variables
    if not shared or (left.functional and right.functional):
        return left.join(right)
    return join_lenient(left, right, budget=budget)


def build_automaton(expr: ast.Expr, atom_automaton=None, budget=None):
    """Fold a compilable (resolved, load-free) subtree into one
    vset-automaton via the closure constructions."""
    atom_automaton = atom_automaton or _default_atom_automaton
    if isinstance(expr, ast.RegexAtom):
        return atom_automaton(expr.source)
    if isinstance(expr, ast.Project):
        return build_automaton(expr.inner, atom_automaton, budget).project(
            frozenset(expr.variables)
        )
    if isinstance(expr, ast.Rename):
        return build_automaton(expr.inner, atom_automaton, budget).rename(
            dict(expr.renaming)
        )
    if isinstance(expr, ast.Join):
        return _join_automata(
            build_automaton(expr.left, atom_automaton, budget),
            build_automaton(expr.right, atom_automaton, budget),
            budget,
        )
    if isinstance(expr, ast.Union):
        return build_automaton(expr.left, atom_automaton, budget).union(
            build_automaton(expr.right, atom_automaton, budget)
        )
    if isinstance(expr, ast.Difference):
        return build_automaton(expr.left, atom_automaton, budget).difference(
            build_automaton(expr.right, atom_automaton, budget)
        )
    raise QueryError(f"subtree {canonical_key(expr)} cannot be compiled")


@dataclass
class StatementResult:
    """Outcome of one executed statement."""

    statement: ast.Statement
    relation: SpanRelation | None = None
    document: str | None = None
    elapsed: float = 0.0
    plan: PlanNode | None = None


class QuerySession:
    """Bindings + store + statistics: the engine behind every query surface."""

    def __init__(
        self,
        db: SpannerDB | None = None,
        *,
        base_dir: str = ".",
        budget=None,
    ) -> None:
        self.db = db if db is not None else SpannerDB()
        self.base_dir = base_dir
        self.budget = budget
        self.bindings: dict[str, ast.Expr] = {}
        #: document name → {canonical plan text → observed cardinality};
        #: read by the planner, written after every (sub)plan execution
        self.stats: dict[str, dict[str, int]] = {}
        self.default_document: str | None = None
        self.last_plan: PlanNode | None = None

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve(self, expr: ast.Expr) -> ast.Expr:
        """Inline ``LET`` bindings and registered string spanners.

        Registered spanners keep their regex source, so they compile into
        larger plans like any literal; spanners registered from automaton
        objects stay as opaque :class:`~repro.query.ast.NameRef` scans."""
        if isinstance(expr, ast.NameRef):
            bound = self.bindings.get(expr.name)
            if bound is not None:
                return bound
            if expr.name in self.db.spanners():
                source = self.db._spanner_sources.get(expr.name)
                if source is not None:
                    return ast.RegexAtom(pos=expr.pos, source=source)
                return expr
            raise QueryError(
                f"unknown name {expr.name!r} (at position {expr.pos}): "
                "not a LET binding or registered spanner"
            )
        if isinstance(expr, (ast.RegexAtom, ast.Load)):
            return expr
        if isinstance(expr, ast.Project):
            return ast.Project(
                pos=expr.pos, inner=self.resolve(expr.inner), variables=expr.variables
            )
        if isinstance(expr, ast.Rename):
            return ast.Rename(
                pos=expr.pos, inner=self.resolve(expr.inner), renaming=expr.renaming
            )
        kind = type(expr)
        return kind(pos=expr.pos, left=self.resolve(expr.left), right=self.resolve(expr.right))

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _doc_length(self, document: str | None) -> int:
        if document is None:
            return DEFAULT_DOC_LENGTH
        return max(1, self.db.document_length(document))

    def plan(
        self, expr, document: str | None = None, *, reorder: bool = True
    ) -> PlanNode:
        """Resolve and plan *expr* (a string or an AST expression)."""
        if isinstance(expr, str):
            expr = parse_expression(expr)
        resolved = self.resolve(expr)
        document = document or self.default_document
        return plan_expression(
            resolved,
            stats=self.stats.get(document or "", {}),
            doc_length=self._doc_length(document),
            reorder=reorder,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _compiled(self, node: PlanNode, budget):
        key = "query:" + node.key

        def compiler(source: str) -> CompiledPlan:
            from repro.slp.spanner_eval import SLPSpannerEvaluator

            automaton = build_automaton(node.expr, budget=budget)
            evaluator = SLPSpannerEvaluator(automaton)
            return CompiledPlan(source, evaluator.det, evaluator)

        return plan_cache().get_or_compile(key, compiler=compiler)

    def execute_plan(
        self, node: PlanNode, document: str | None = None, budget=None
    ) -> SpanRelation:
        """Run a planned tree, charging *budget* per operator, and feed
        observed cardinalities back into the session statistics."""
        budget = budget if budget is not None else self.budget
        document = document or self.default_document
        relation = self._execute(node, document, budget)
        return relation

    def _record(self, node: PlanNode, document: str | None, relation: SpanRelation) -> None:
        self.stats.setdefault(document or "", {})[node.key] = len(relation)

    def _require_document(self, node: PlanNode, document: str | None) -> str:
        if document is None:
            raise QueryError(
                f"no document selected for {node.key}: "
                "use 'expr ON name', \\doc in the REPL, or a DOC statement"
            )
        return document

    def _execute(self, node: PlanNode, document: str | None, budget) -> SpanRelation:
        if budget is not None:
            budget.check_deadline()
        if obs.enabled():
            obs.metrics().counter(f"query.plan.{node.strategy}").inc()
        if node.strategy == "load":
            relation = load_relation(node.expr.path, self.base_dir)
            if budget is not None:
                budget.step(len(relation))
        elif node.strategy == "scan":
            relation = self.db.evaluate(
                node.expr.name, self._require_document(node, document), budget
            )
        elif node.strategy == "compile":
            plan = self._compiled(node, budget)
            doc = self._require_document(node, document)
            relation = plan.evaluator.evaluate(
                self.db.slp, self.db.document_node(doc), budget
            )
        else:  # materialize
            children = [self._execute(child, document, budget) for child in node.children]
            relation = self._combine(node, children, budget)
        self._record(node, document, relation)
        return relation

    def _combine(self, node: PlanNode, children: list[SpanRelation], budget) -> SpanRelation:
        expr = node.expr
        if budget is not None:
            if isinstance(expr, ast.Join):
                budget.step(max(1, len(children[0]) * len(children[1])))
            else:
                budget.step(max(1, sum(len(child) for child in children)))
            budget.check_deadline()
        if isinstance(expr, ast.Project):
            return children[0].project(expr.variables)
        if isinstance(expr, ast.Rename):
            return children[0].rename(dict(expr.renaming))
        if isinstance(expr, ast.Join):
            return children[0].natural_join(children[1])
        if isinstance(expr, ast.Union):
            return children[0].union(children[1])
        if isinstance(expr, ast.Difference):
            return children[0].difference(children[1])
        raise QueryError(f"cannot combine {node.op}")  # pragma: no cover

    def evaluate(
        self, expr, document: str | None = None, budget=None
    ) -> SpanRelation:
        """Parse (if needed), resolve, plan, and execute one expression."""
        node = self.plan(expr, document)
        self.last_plan = node
        if obs.enabled():
            obs.metrics().counter("query.evaluations").inc()
        return self.execute_plan(node, document, budget)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def execute_statement(self, statement: ast.Statement, budget=None) -> StatementResult:
        started = time.perf_counter()
        if obs.enabled():
            obs.metrics().counter("query.statements").inc()
        if isinstance(statement, ast.Let):
            self.bindings[statement.name] = self.resolve(statement.expr)
            return StatementResult(statement, elapsed=time.perf_counter() - started)
        if isinstance(statement, ast.DocStatement):
            if statement.name in self.db.documents():
                # replace: drop the catalog entry (arena nodes are
                # immutable and shared; the old node just goes cold) and
                # invalidate this document's cardinality statistics
                self.db._db._docs.pop(statement.name, None)
                self.stats.pop(statement.name, None)
            self.db.add_document(statement.name, statement.text, budget or self.budget)
            self.default_document = statement.name
            return StatementResult(
                statement,
                document=statement.name,
                elapsed=time.perf_counter() - started,
            )
        if isinstance(statement, ast.Query):
            document = statement.document or self.default_document
            node = self.plan(statement.expr, document)
            self.last_plan = node
            relation = self.execute_plan(node, document, budget)
            return StatementResult(
                statement,
                relation=relation,
                document=document,
                elapsed=time.perf_counter() - started,
                plan=node,
            )
        raise QueryError(f"unknown statement {statement!r}")  # pragma: no cover

    def execute(self, text: str, budget=None) -> list[StatementResult]:
        """Run a whole program (first syntax error raises)."""
        statements, _ = parse_program(text, recover=False)
        return [self.execute_statement(statement, budget) for statement in statements]


def evaluate_query(
    expression: str,
    db: SpannerDB | None = None,
    document: str | None = None,
    budget=None,
    base_dir: str = ".",
) -> SpanRelation:
    """One-shot: evaluate *expression* through a fresh session."""
    session = QuerySession(db, base_dir=base_dir, budget=budget)
    return session.evaluate(expression, document, budget)


def evaluate_query_naive(
    expr,
    text: str,
    *,
    db: SpannerDB | None = None,
    bindings: dict[str, ast.Expr] | None = None,
    base_dir: str = ".",
    budget=None,
) -> SpanRelation:
    """The differential reference: bottom-up, left-to-right
    materialization over the decompressed *text*.

    Atoms are evaluated by the naive enumerator
    (:meth:`repro.automata.vset.VSetAutomaton.evaluate`) — no SLP, no
    plan cache, no reordering — so agreement with
    :meth:`QuerySession.evaluate` certifies the whole planner stack."""
    if isinstance(expr, str):
        expr = parse_expression(expr)
    if bindings or db is not None:
        session = QuerySession(db, base_dir=base_dir)
        session.bindings.update(bindings or {})
        expr = session.resolve(expr)

    def walk(node: ast.Expr) -> SpanRelation:
        if budget is not None:
            budget.check_deadline()
        if isinstance(node, ast.RegexAtom):
            if budget is not None:
                budget.step(max(1, len(text)))
            return _default_atom_automaton(node.source).evaluate(text)
        if isinstance(node, ast.NameRef):
            if db is None:
                raise QueryError(f"unknown name {node.name!r} (at position {node.pos})")
            return db._evaluator(node.name).evaluate_text(text, budget)
        if isinstance(node, ast.Load):
            return load_relation(node.path, base_dir)
        if isinstance(node, ast.Project):
            return walk(node.inner).project(node.variables)
        if isinstance(node, ast.Rename):
            return walk(node.inner).rename(dict(node.renaming))
        left = walk(node.left)
        right = walk(node.right)
        if budget is not None:
            budget.step(max(1, len(left) * len(right)))
        if isinstance(node, ast.Join):
            return left.natural_join(right)
        if isinstance(node, ast.Union):
            return left.union(right)
        if isinstance(node, ast.Difference):
            return left.difference(right)
        raise QueryError(f"not a query expression: {node!r}")  # pragma: no cover

    return walk(expr)
