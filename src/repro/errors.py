"""Exception hierarchy for spanlib.

Every error raised by the library derives from :class:`SpanlibError`, so
callers can catch library failures without also catching programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations


class SpanlibError(Exception):
    """Base class of all errors raised by the ``repro`` package."""


class InvalidSpanError(SpanlibError, ValueError):
    """A span's bounds are outside ``1 <= i <= j <= len(doc) + 1``."""


class InvalidMarkedWordError(SpanlibError, ValueError):
    """A sequence of symbols is not a valid subword-marked word or ref-word."""


class RegexSyntaxError(SpanlibError, ValueError):
    """A spanner regex failed to parse.

    Attributes
    ----------
    position:
        0-based offset into the pattern at which parsing failed.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class NotFunctionalError(SpanlibError, ValueError):
    """An operation required a functional spanner but got a non-functional one."""


class SchemaError(SpanlibError, ValueError):
    """Variable sets of operands are incompatible for the requested operation."""


class UnsupportedSpannerError(SpanlibError, ValueError):
    """The spanner lies outside the fragment an algorithm supports.

    For example, refl-spanner evaluation on documents requires *sequential*
    references (each reference occurs after its variable's closing marker).
    """


class EvaluationLimitError(SpanlibError, RuntimeError):
    """A deliberately bounded search (e.g. core-spanner satisfiability,
    which is PSpace-complete in general) exhausted its budget."""


class SLPError(SpanlibError, ValueError):
    """Malformed straight-line program or out-of-range compressed access."""


class CDEError(SpanlibError, ValueError):
    """Malformed complex-document-editing expression."""
