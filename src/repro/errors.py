"""Exception hierarchy for spanlib.

Every error raised by the library derives from :class:`SpanlibError`, so
callers can catch library failures without also catching programming errors
such as :class:`TypeError`.

The hierarchy has three robustness-oriented branches:

* **resource governance** — :class:`EvaluationLimitError` and its
  subclasses :class:`DeadlineExceededError` and :class:`MemoryLimitError`
  are raised by :class:`repro.util.Budget`-governed evaluation instead of
  hanging or exhausting memory;
* **persistence** — :class:`PersistenceError` and :class:`JournalError`
  signal corrupt or torn on-disk state detected by the checksummed
  snapshot/journal machinery of :mod:`repro.slp.serialize`;
* **fault injection** — :class:`FaultInjectedError` is raised by the
  :mod:`repro.util.faults` harness, and is a :class:`SpanlibError` so that
  injected failures exercise exactly the error paths real failures take;
* **serving** — :class:`ServeError` and its subclasses
  :class:`OverloadedError` (admission control shed the request, with a
  ``retry_after`` hint), :class:`CircuitOpenError` (the compressed path is
  tripped and degradation is disabled), and :class:`ServiceStoppedError`
  are raised by the :mod:`repro.serve` query service.

All public errors are exported from :mod:`repro` (asserted by
``tests/test_exports.py``).
"""

from __future__ import annotations

__all__ = [
    "SpanlibError",
    "InvalidSpanError",
    "InvalidMarkedWordError",
    "QueryError",
    "QuerySyntaxError",
    "RegexSyntaxError",
    "NotFunctionalError",
    "SchemaError",
    "UnsupportedSpannerError",
    "EvaluationLimitError",
    "DeadlineExceededError",
    "MemoryLimitError",
    "TransactionError",
    "SLPError",
    "PersistenceError",
    "JournalError",
    "CDEError",
    "FaultInjectedError",
    "ServeError",
    "OverloadedError",
    "CircuitOpenError",
    "ServiceStoppedError",
    "ParallelError",
    "WorkerCrashError",
    "PoolExhaustedError",
    "StreamError",
    "WindowOverrunError",
]


class SpanlibError(Exception):
    """Base class of all errors raised by the ``repro`` package."""


class InvalidSpanError(SpanlibError, ValueError):
    """A span's bounds are outside ``1 <= i <= j <= len(doc) + 1``."""


class InvalidMarkedWordError(SpanlibError, ValueError):
    """A sequence of symbols is not a valid subword-marked word or ref-word."""


class RegexSyntaxError(SpanlibError, ValueError):
    """A spanner regex failed to parse.

    Attributes
    ----------
    position:
        0-based offset into the pattern at which parsing failed.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class QueryError(SpanlibError, ValueError):
    """A :mod:`repro.query` statement could not be executed.

    Raised by the executor for semantic failures that are not syntax
    errors: references to unbound names, evaluation without a document
    in scope, malformed ``load(...)`` relation files, and so on.  Schema
    violations inside algebra operators keep their own
    :class:`SchemaError` type even when surfaced through the query layer.
    """


class QuerySyntaxError(QueryError):
    """A :mod:`repro.query` expression or script failed to parse.

    Attributes
    ----------
    position:
        0-based offset into the query text at which parsing failed.
    line:
        1-based line number of the failure (scripts are multi-line).
    """

    def __init__(self, message: str, position: int, line: int = 1) -> None:
        super().__init__(f"{message} (at position {position}, line {line})")
        self.position = position
        self.line = line


class NotFunctionalError(SpanlibError, ValueError):
    """An operation required a functional spanner but got a non-functional one."""


class SchemaError(SpanlibError, ValueError):
    """Variable sets of operands are incompatible for the requested operation."""


class UnsupportedSpannerError(SpanlibError, ValueError):
    """The spanner lies outside the fragment an algorithm supports.

    For example, refl-spanner evaluation on documents requires *sequential*
    references (each reference occurs after its variable's closing marker).
    """


class EvaluationLimitError(SpanlibError, RuntimeError):
    """A deliberately bounded computation exhausted its budget.

    Raised both by intrinsically bounded searches (e.g. core-spanner
    satisfiability, which is PSpace-complete in general) and by any
    evaluation governed by a :class:`repro.util.Budget` whose ``max_steps``
    allowance ran out.  The subclasses :class:`DeadlineExceededError` and
    :class:`MemoryLimitError` distinguish the wall-clock and memory guards.
    """


class DeadlineExceededError(EvaluationLimitError):
    """The wall-clock deadline of a :class:`repro.util.Budget` expired.

    Deadline checks are amortised (every ``check_interval`` budget steps),
    so evaluation terminates shortly after — not exactly at — the deadline,
    but always within a bounded number of cheap steps.
    """


class MemoryLimitError(EvaluationLimitError):
    """An operation would materialise more bytes than its budget allows.

    This is the decompression-bomb guard: SLPs can represent documents
    exponentially longer than their compressed size, so ``document_text``,
    CDE expansion, and enumeration preprocessing refuse to grow past the
    budget's ``max_bytes`` instead of exhausting memory.
    """


class TransactionError(SpanlibError, RuntimeError):
    """A :class:`repro.db.SpannerDB` transaction was misused (e.g. a commit
    or rollback without a matching begin) or could not complete cleanly."""


class SLPError(SpanlibError, ValueError):
    """Malformed straight-line program or out-of-range compressed access."""


class PersistenceError(SLPError):
    """On-disk store state failed validation.

    Raised when a checksummed snapshot is torn or corrupt (the checksum
    does not match), or when no readable snapshot — primary or ``.bak``
    fallback — can be found for a store that should have one.
    """


class JournalError(PersistenceError):
    """An edit-journal record is corrupt or cannot be replayed.

    Torn *tails* (a crash mid-append) are not errors — recovery stops at
    the last durable record; this error signals records that pass their
    checksum but cannot be applied to the recovered store.
    """


class CDEError(SpanlibError, ValueError):
    """Malformed complex-document-editing expression (construction, textual
    parsing via :func:`repro.slp.parse_cde`, or out-of-range application)."""


class FaultInjectedError(SpanlibError, RuntimeError):
    """The error raised by :mod:`repro.util.faults` injection points.

    It derives from :class:`SpanlibError` deliberately: an injected fault
    must travel the same rollback/recovery paths as a genuine library
    failure, and the fault-injection test suite asserts precisely that.
    """


class ServeError(SpanlibError, RuntimeError):
    """Base class of failures raised by the :mod:`repro.serve` layer."""


class OverloadedError(ServeError):
    """Admission control shed the request: the queue is full.

    Attributes
    ----------
    retry_after:
        Suggested seconds to wait before resubmitting, derived from the
        current queue depth and the observed mean service time.  Clients
        that honour it drain the backlog instead of amplifying it.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class StreamError(SpanlibError, RuntimeError):
    """Base class of failures raised by the :mod:`repro.stream` layer.

    Raised directly when the incremental-append differential guard trips:
    the associative ``(σ, T, T_em)`` fold over the raw feed disagreed —
    bit for bit — with the entry computed over the appended SLP, so the
    compressed state can no longer be trusted and must be rebuilt.
    """


class WindowOverrunError(StreamError):
    """A stream window missed its deadline (or exhausted its fault-retry
    budget) and was shipped *partial* instead of stalling the feed.

    Carried as a marker on the degraded
    :class:`repro.stream.WindowResult` rather than raised, so consumers
    see exactly which windows are incomplete while the feed keeps
    flowing.

    Attributes
    ----------
    window:
        Zero-based index of the overrun window.
    """

    def __init__(self, message: str, window: int = -1) -> None:
        super().__init__(message)
        self.window = int(window)


class CircuitOpenError(ServeError):
    """The compressed-evaluation circuit is open and graceful degradation
    is disabled, so the request cannot be served at all right now."""


class ServiceStoppedError(ServeError):
    """The request was submitted to (or was still queued in) a service
    that has been stopped."""


class ParallelError(SpanlibError, ValueError):
    """A misconfigured :mod:`repro.parallel` request (unknown backend,
    invalid shard/worker count)."""


class WorkerCrashError(ParallelError, RuntimeError):
    """Worker processes died faster than the supervised pool could
    tolerate: the bounded respawn budget or the per-shard retry budget of
    one :mod:`repro.parallel.procpool` request ran out.

    The request did **no partial work from the caller's point of view** —
    results are all-or-nothing — and the caller (or the ``"auto"``
    backend's circuit breaker) may fall back to the thread or serial
    backend, whose answers are bit-for-bit identical.
    """


class PoolExhaustedError(ParallelError, RuntimeError):
    """Every process-pool worker is checked out by other requests.

    Admission-control shaped, like :class:`OverloadedError` one layer
    down: the pool refuses to queue unboundedly behind busy workers.
    :mod:`repro.serve` converts this into an :class:`OverloadedError`
    with a ``retry_after`` hint.

    Attributes
    ----------
    retry_after:
        Suggested seconds before retrying, from the pool's observed mean
        request time.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
