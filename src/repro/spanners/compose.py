"""Spanner composition: apply a spanner *inside* another spanner's capture.

SystemT's AQL (the system whose formalisation document spanners are,
Section 1 of the paper) composes extractors: a coarse spanner finds
regions, a finer spanner runs on each region's content.  This module
provides that operator:

    within(outer, var, inner)

evaluates *outer* on the document, and for every output tuple evaluates
*inner* on the factor extracted by *var*, shifting the inner spans to
global coordinates.  The result's schema is outer's schema plus inner's
(inner variable names must be disjoint from outer's).

For *regular* operands the composition is again a spanner (function from
documents to relations) and is implemented lazily; note it is generally
**not** a regular spanner — inner matches are constrained to lie inside
the outer span, which regular joins cannot express without re-anchoring —
which is precisely why AQL has it as a primitive.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.spanner import Spanner
from repro.core.spans import SpanRelation, SpanTuple
from repro.errors import SchemaError

__all__ = ["within", "ComposedSpanner"]


class ComposedSpanner(Spanner):
    """The result of :func:`within` — itself a spanner."""

    def __init__(self, outer: Spanner, var: str, inner: Spanner) -> None:
        if var not in outer.variables:
            raise SchemaError(
                f"composition variable {var!r} is not extracted by the outer "
                f"spanner {sorted(outer.variables)}"
            )
        clash = outer.variables & inner.variables
        if clash:
            raise SchemaError(
                f"inner and outer schemas overlap on {sorted(clash)}; rename first"
            )
        self.outer = outer
        self.var = var
        self.inner = inner

    @property
    def variables(self) -> frozenset[str]:
        return self.outer.variables | self.inner.variables

    def enumerate(self, doc: str) -> Iterator[SpanTuple]:
        inner_cache: dict[str, list[SpanTuple]] = {}
        for outer_tuple in self.outer.enumerate(doc):
            span = outer_tuple.get(self.var)
            if span is None:
                continue  # schemaless: nothing to recurse into
            content = span.extract(doc)
            if content not in inner_cache:
                inner_cache[content] = list(self.inner.enumerate(content))
            offset = span.start - 1
            for inner_tuple in inner_cache[content]:
                shifted = SpanTuple(
                    (var, inner_span.shift(offset))
                    for var, inner_span in inner_tuple
                )
                yield outer_tuple.merge(shifted)

    def evaluate(self, doc: str) -> SpanRelation:
        return SpanRelation(self.variables, self.enumerate(doc))


def within(outer: Spanner, var: str, inner: Spanner) -> ComposedSpanner:
    """Compose: run *inner* on the content of *outer*'s capture *var*.

    Example — fields inside records::

        records = RegularSpanner.from_regex("(.|\\n)*!rec{[^\\n]+}\\n(.|\\n)*")
        fields = RegularSpanner.from_regex("[^=]*=!value{[^ ]+}( [^=]*)?")
        query = within(records, "rec", fields)
    """
    return ComposedSpanner(outer, var, inner)
