"""Spanner algebra utilities beyond the closed regular operations.

Two things live here:

* :func:`join_lenient` — the *lenient* natural join for schemaless
  spanners: a shared variable may be defined by both operands (at the same
  span), by exactly one of them, or by neither.  Regular spanners are
  closed under this operation too, but the product construction must guess,
  per shared variable, which side defines it; the guesses multiply the
  automaton by at most ``3^|shared|``.  For functional spanners the lenient
  and strict joins coincide.
* :func:`duplicate_variable` — the marker-duplication transform used by the
  constructive core-simplification lemma (Section 2.3): a second variable is
  made to mark exactly the same spans as an existing one, so that
  string-equality selections can be made *branch-private* when pushing them
  through unions.
"""

from __future__ import annotations

import itertools

from repro.automata.evset import ExtendedVSetAutomaton
from repro.automata.evset import join as eva_join
from repro.automata.nfa import NFA
from repro.automata.ops import union as nfa_union
from repro.automata.vset import VSetAutomaton
from repro.core.alphabet import Close, Marker, Open

__all__ = ["join_lenient", "duplicate_variable", "forbid_variables"]


def forbid_variables(automaton: VSetAutomaton, variables) -> VSetAutomaton:
    """Restrict the automaton to runs that never mark any of *variables*.

    Arcs carrying markers of the forbidden variables are dropped, and the
    variables leave the schema entirely (so that downstream product
    constructions no longer synchronise on them).
    """
    forbidden = frozenset(variables)
    nfa = NFA()
    nfa.add_states(automaton.nfa.num_states)
    nfa.initial = set(automaton.nfa.initial)
    nfa.accepting = set(automaton.nfa.accepting)
    for source, symbol, target in automaton.nfa.arcs():
        if isinstance(symbol, Marker) and symbol.var in forbidden:
            continue
        nfa.add_arc(source, symbol, target)
    return VSetAutomaton(nfa, automaton.variables - forbidden, functional=False)


def join_lenient(
    left: VSetAutomaton, right: VSetAutomaton, budget=None
) -> VSetAutomaton:
    """Natural join with the lenient schemaless semantics of [27].

    For every shared variable, one of three modes is guessed:

    * ``sync``  — both operands may define it (synchronised markers);
    * ``left``  — the right operand must not mark it;
    * ``right`` — the left operand must not mark it.

    The result is the union over all mode assignments; duplicates across
    overlapping modes are harmless because relations are sets and the
    enumeration pipeline determinises the union.

    The ``3^|shared|`` products make this the one algebra operation whose
    cost is exponential in the schema overlap, so an optional
    :class:`~repro.util.Budget` is charged ``|Q_l|·|Q_r|`` steps per mode
    assignment and the wall-clock deadline is re-checked between
    products — a query with many shared variables dies at its deadline
    instead of stalling unkillably inside the enumeration.
    """
    shared = sorted(left.variables & right.variables)
    if not shared:
        return left.join(right)
    per_product = max(1, left.nfa.num_states * right.nfa.num_states)
    pieces: list[VSetAutomaton] = []
    for modes in itertools.product(("sync", "left", "right"), repeat=len(shared)):
        if budget is not None:
            budget.step(per_product)
            budget.check_deadline()
        banned_left = [v for v, m in zip(shared, modes) if m == "right"]
        banned_right = [v for v, m in zip(shared, modes) if m == "left"]
        left_variant = forbid_variables(left, banned_left) if banned_left else left
        right_variant = forbid_variables(right, banned_right) if banned_right else right
        product = eva_join(
            ExtendedVSetAutomaton.from_vset(left_variant),
            ExtendedVSetAutomaton.from_vset(right_variant),
        ).to_vset()
        pieces.append(product)
    result = pieces[0]
    for piece in pieces[1:]:
        result = result.union(piece)
    return VSetAutomaton(
        result.nfa,
        left.variables | right.variables,
        functional=left.functional and right.functional,
    )


def duplicate_variable(
    automaton: VSetAutomaton, var: str, copy: str
) -> VSetAutomaton:
    """Make *copy* mark exactly the same spans as *var*.

    Every ``var▷`` arc is followed by a fresh ``copy▷`` arc and every
    ``◁var`` arc by a ``◁copy`` arc, so in every accepted word the two
    variables carry identical spans.  Used by the core-simplification
    compiler to give each union branch private equality variables.
    """
    if copy in automaton.variables:
        raise ValueError(f"variable {copy!r} already present")
    nfa = NFA()
    nfa.add_states(automaton.nfa.num_states)
    nfa.initial = set(automaton.nfa.initial)
    nfa.accepting = set(automaton.nfa.accepting)
    for source, symbol, target in automaton.nfa.arcs():
        if isinstance(symbol, Marker) and symbol.var == var:
            midway = nfa.add_state()
            twin = Open(copy) if symbol.is_open else Close(copy)
            nfa.add_arc(source, symbol, midway)
            nfa.add_arc(midway, twin, target)
        else:
            nfa.add_arc(source, symbol, target)
    return VSetAutomaton(
        nfa, automaton.variables | {copy}, functional=automaton.functional
    )
