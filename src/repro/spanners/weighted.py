"""Weighted (K-annotated) document spanners — the [8] direction
(Doleschal, Kimelfeld, Martens, Peterfreund: *Weight Annotation in
Information Extraction*, ICDT 2020; cited in the survey's introduction).

A weighted spanner annotates every arc of a vset-automaton with a value
from a commutative semiring K; the annotation of an output tuple is

    ⊕ over accepting runs producing the tuple of (⊗ of the run's arc weights)

so a K-annotated spanner maps a document to a K-relation (tuple → weight)
instead of a plain set.  Stock semirings:

* :data:`BOOLEAN`      — recovers ordinary spanner semantics;
* :data:`COUNTING`     — the weight of a tuple is its number of runs
  (ambiguity counting — useful for testing determinisation!);
* :data:`TROPICAL`     — min-cost annotation (weights as costs);
* :data:`PROBABILITY`  — sum of products (e.g. noisy extraction scores).

Evaluation is the weighted generalisation of the backward-DP evaluator in
:mod:`repro.enumeration.naive`: per (state, position) we keep a map from
suffix emissions to their aggregated weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Iterable, TypeVar

from repro.automata.nfa import EPSILON, NFA
from repro.core.alphabet import Marker, symbol_matches
from repro.core.spans import SpanTuple
from repro.enumeration.naive import emissions_to_tuple
from repro.errors import SchemaError

__all__ = [
    "Semiring",
    "BOOLEAN",
    "COUNTING",
    "TROPICAL",
    "PROBABILITY",
    "WeightedSpanner",
]

K = TypeVar("K")


@dataclass(frozen=True)
class Semiring(Generic[K]):
    """A commutative semiring (K, ⊕, ⊗, 0̄, 1̄)."""

    name: str
    zero: K
    one: K
    plus: Callable[[K, K], K]
    times: Callable[[K, K], K]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


BOOLEAN: Semiring[bool] = Semiring(
    "boolean", False, True, lambda a, b: a or b, lambda a, b: a and b
)
COUNTING: Semiring[int] = Semiring(
    "counting", 0, 1, lambda a, b: a + b, lambda a, b: a * b
)
TROPICAL: Semiring[float] = Semiring(
    "tropical", float("inf"), 0.0, min, lambda a, b: a + b
)
PROBABILITY: Semiring[float] = Semiring(
    "probability", 0.0, 1.0, lambda a, b: a + b, lambda a, b: a * b
)


class WeightedSpanner(Generic[K]):
    """A vset-automaton whose arcs carry semiring weights.

    Build imperatively like an :class:`~repro.automata.nfa.NFA` but pass a
    weight per arc (``None`` = the semiring's 1̄), or lift an existing
    spanner with :meth:`from_spanner` and re-weight selected arcs.
    """

    def __init__(self, semiring: Semiring[K]) -> None:
        self.semiring = semiring
        self.nfa = NFA()
        self._weights: dict[int, K] = {}  # arc index (per source) is implicit
        self._arc_weights: list[K] = []
        self._arc_index: dict[tuple[int, int], K] = {}
        # we store weights parallel to nfa arcs: (source, position-in-list)
        self._weights_by_source: dict[int, list[K]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(self, initial: bool = False, accepting: bool = False) -> int:
        state = self.nfa.add_state(initial=initial, accepting=accepting)
        self._weights_by_source[state] = []
        return state

    def add_arc(self, source: int, symbol, target: int, weight: K | None = None) -> None:
        self.nfa.add_arc(source, symbol, target)
        self._weights_by_source[source].append(
            self.semiring.one if weight is None else weight
        )

    @classmethod
    def from_spanner(
        cls,
        spanner,
        semiring: Semiring[K],
        arc_weight: Callable[[object], K] | None = None,
    ) -> "WeightedSpanner[K]":
        """Lift a vset-automaton / RegularSpanner into K.

        *arc_weight* maps each non-ε arc symbol to a weight (default: 1̄
        everywhere, which makes evaluation the ordinary semantics under
        :data:`BOOLEAN` and run-counting under :data:`COUNTING`).
        ε-arcs always carry 1̄ — Thompson automata are full of them and
        they are representation artefacts, not run structure.
        """
        automaton = getattr(spanner, "automaton", spanner)
        weighted = cls(semiring)
        weighted.nfa = automaton.nfa.copy()
        weighted._weights_by_source = {
            state: [] for state in weighted.nfa.states()
        }
        for state in weighted.nfa.states():
            for symbol, _ in weighted.nfa.arcs_from(state):
                weight = (
                    semiring.one
                    if arc_weight is None or symbol is None
                    else arc_weight(symbol)
                )
                weighted._weights_by_source[state].append(weight)
        weighted._variables = automaton.variables
        return weighted

    @property
    def variables(self) -> frozenset[str]:
        stored = getattr(self, "_variables", None)
        if stored is not None:
            return stored
        return frozenset(m.var for m in self.nfa.marker_symbols())

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, doc: str) -> dict[SpanTuple, K]:
        """The K-relation: every output tuple with its aggregate weight.

        Weighted backward DP over the product graph.  ε-arcs participate
        with their weights; ε-cycles with non-1̄ weights are not supported
        (they would need a semiring star operation) and raise.
        """
        semiring = self.semiring
        n = len(doc)
        # suffix[state] : dict emissions-tuple -> weight, where emissions is
        # a frozenset of (position, marker)
        suffix: list[dict[int, dict[frozenset, K]]] = [
            dict() for _ in range(n + 1)
        ]

        def add(table: dict[frozenset, K], emissions: frozenset, weight: K) -> None:
            seen = table.get(emissions)
            table[emissions] = weight if seen is None else semiring.plus(seen, weight)

        for position in range(n, -1, -1):
            # fixed contributions of this position: character steps into the
            # already-computed next layer, plus acceptance at the end
            base: dict[int, dict[frozenset, K]] = {}
            for state in self.nfa.states():
                table: dict[frozenset, K] = {}
                if position == n and state in self.nfa.accepting:
                    add(table, frozenset(), semiring.one)
                arcs = self.nfa.arcs_from(state)
                weights = self._weights_by_source[state]
                for (symbol, target), weight in zip(arcs, weights):
                    if (
                        symbol is not EPSILON
                        and not isinstance(symbol, Marker)
                        and position < n
                        and symbol_matches(symbol, doc[position])
                    ):
                        for emissions, value in suffix[position + 1].get(
                            target, {}
                        ).items():
                            add(table, emissions, semiring.times(weight, value))
                base[state] = table
            # Jacobi iteration over the ε/marker subgraph: recompute every
            # table from scratch each sweep, so non-idempotent semirings
            # (counting, probability) sum each run exactly once.  Acyclic
            # subgraphs stabilise within num_states sweeps; cyclic ones with
            # non-idempotent ⊕ diverge and trip the guard (they would need a
            # star operation), while idempotent ⊕ (boolean, tropical)
            # converges to the least fixpoint.
            layer = base
            for sweep in range(2 * self.nfa.num_states + 3):
                new_layer: dict[int, dict[frozenset, K]] = {}
                for state in self.nfa.states():
                    table = dict(base[state])
                    arcs = self.nfa.arcs_from(state)
                    weights = self._weights_by_source[state]
                    for (symbol, target), weight in zip(arcs, weights):
                        if symbol is EPSILON:
                            for emissions, value in layer[target].items():
                                add(table, emissions, semiring.times(weight, value))
                        elif isinstance(symbol, Marker):
                            emitted = (position + 1, symbol)
                            for emissions, value in layer[target].items():
                                if emitted in emissions:
                                    continue
                                add(
                                    table,
                                    emissions | {emitted},
                                    semiring.times(weight, value),
                                )
                    new_layer[state] = table
                if new_layer == layer:
                    break
                layer = new_layer
            else:
                raise SchemaError(
                    "weighted evaluation diverged: ε/marker cycle with "
                    "non-idempotent aggregation (no star operation available)"
                )
            for state, table in layer.items():
                if table:
                    suffix[position][state] = table
        result: dict[SpanTuple, K] = {}
        for state in self.nfa.initial:
            for emissions, weight in suffix[0].get(state, {}).items():
                tup = emissions_to_tuple(emissions)
                seen = result.get(tup)
                result[tup] = (
                    weight if seen is None else semiring.plus(seen, weight)
                )
        return result

    def best(self, doc: str) -> tuple[SpanTuple, K] | None:
        """The minimum-weight tuple under the tropical semiring (or any
        semiring whose values are comparable)."""
        relation = self.evaluate(doc)
        if not relation:
            return None
        tup = min(relation, key=lambda t: relation[t])
        return tup, relation[tup]
