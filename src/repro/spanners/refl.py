"""Refl-spanners (Schmid & Schweikardt [38]; paper Section 3).

A refl-spanner is represented by an NFA over ``Σ ∪ {x▷, ◁x} ∪ {x}`` whose
language is a regular *ref-language*: accepted words may contain reference
symbols ``x`` standing for a copy of whatever the span of ``x`` captured.
The semantics is ``⟦L⟧(D) = { st(d(w)) : w ∈ L, e(d(w)) = D }`` with
``d(·)`` the dereferencing function of Section 3.1.

Provided here:

* :class:`ReflSpanner` with

  - full **evaluation** by backtracking product search (NonEmptiness for
    refl-spanners is NP-hard [38], so no polynomial algorithm is expected);
  - polynomial **model checking** via reference expansion — the Section 3.3
    algorithm: given the candidate tuple, the content of every reference is
    known, so the ref-arcs can be interpreted as reading a concrete factor
    of the document;
  - **sequentiality** and **reference-boundedness** analysis;
  - the **refl → core translation** of Section 3.2 (for reference-bounded
    spanners);

* :func:`core_to_refl_concat` — the converse direction for the
  non-overlapping, concatenation-shaped case illustrated by the paper's
  expressions (2)/(3) and β/β′: all captures of the equality group are
  siblings of one concatenation, all but the leftmost are replaced by a
  reference, and the leftmost content language is refined to the
  intersection of all the group's content languages.
"""

from __future__ import annotations

from typing import Iterator

from repro.automata.nfa import EPSILON, NFA
from repro.automata.ops import intersection as nfa_intersection
from repro.core.alphabet import Close, Marker, Open, Ref, symbol_matches
from repro.core.spanner import Spanner
from repro.core.spans import Span, SpanRelation, SpanTuple
from repro.errors import SchemaError, UnsupportedSpannerError
from repro.regex import ast as regex_ast
from repro.regex.compile import compile_ast, ref_nfa_from_regex
from repro.regex.parser import parse as parse_regex

__all__ = ["ReflSpanner", "core_to_refl_concat"]

_UNSEEN, _OPEN, _CLOSED = 0, 1, 2


class ReflSpanner(Spanner):
    """A spanner represented by a regular ref-language."""

    def __init__(self, nfa: NFA, variables: frozenset[str] | None = None) -> None:
        marked = frozenset(m.var for m in nfa.marker_symbols())
        referenced = frozenset(r.var for r in nfa.ref_symbols())
        if variables is None:
            variables = marked
        dangling = referenced - variables
        if dangling:
            raise SchemaError(
                f"references to variables never captured: {sorted(dangling)}"
            )
        self.nfa = nfa
        self._variables = frozenset(variables)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_regex(cls, pattern: str) -> "ReflSpanner":
        """Compile a spanner regex with references, e.g. the paper's (3):
        ``ab*!x{(a|b)*}(b|c)*!y{&x}b*``."""
        nfa, variables = ref_nfa_from_regex(pattern)
        return cls(nfa, variables)

    # ------------------------------------------------------------------
    # Spanner interface
    # ------------------------------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        return self._variables

    def evaluate(self, doc: str) -> SpanRelation:
        return SpanRelation(self._variables, self.enumerate(doc))

    def enumerate(self, doc: str) -> Iterator[SpanTuple]:
        """Enumerate ``S(doc)`` by backtracking search over the product.

        Requires the spanner to be *sequential* (references occur only
        after their variable closed), which is the fragment for which [38]
        states its algorithms; see DESIGN.md.  Worst-case exponential, as
        expected from NP-hardness.
        """
        self._require_sequential()
        n = len(doc)
        seen: set = set()
        produced: set[SpanTuple] = set()
        # configuration: (state, position, open-positions, closed spans)
        start = [
            (state, 0, frozenset(), frozenset()) for state in self.nfa.initial
        ]
        stack = list(start)
        seen.update(start)
        while stack:
            state, pos, opened, closed = stack.pop()
            if pos == n and state in self.nfa.accepting:
                tup = SpanTuple({var: Span(a, b) for var, a, b in closed})
                if tup not in produced:
                    produced.add(tup)
                    yield tup
            for symbol, target in self.nfa.arcs_from(state):
                successors = self._step(symbol, target, doc, pos, opened, closed)
                for config in successors:
                    if config not in seen:
                        seen.add(config)
                        stack.append(config)

    def _step(self, symbol, target, doc, pos, opened, closed):
        if symbol is EPSILON:
            return [(target, pos, opened, closed)]
        if isinstance(symbol, Marker):
            if symbol.is_open:
                if any(v == symbol.var for v, _ in opened) or any(
                    v == symbol.var for v, _, _ in closed
                ):
                    return []
                return [(target, pos, opened | {(symbol.var, pos + 1)}, closed)]
            begin = next((b for v, b in opened if v == symbol.var), None)
            if begin is None:
                return []
            return [
                (
                    target,
                    pos,
                    frozenset(p for p in opened if p[0] != symbol.var),
                    closed | {(symbol.var, begin, pos + 1)},
                )
            ]
        if isinstance(symbol, Ref):
            span = next(
                ((b, e) for v, b, e in closed if v == symbol.var), None
            )
            if span is None:
                return []
            factor = doc[span[0] - 1: span[1] - 1]
            if doc.startswith(factor, pos):
                return [(target, pos + len(factor), opened, closed)]
            return []
        # character predicate
        if pos < len(doc) and symbol_matches(symbol, doc[pos]):
            return [(target, pos + 1, opened, closed)]
        return []

    def model_check(self, doc: str, tup: SpanTuple) -> bool:
        """Polynomial ModelChecking by reference expansion (Section 3.3).

        The candidate tuple fixes the content of every variable, so a
        reference arc is interpreted as reading the concrete factor
        ``doc[t(x)]``; marker arcs must be taken exactly at the scheduled
        positions of the tuple.
        """
        if not tup.variables <= self._variables or not tup.fits(doc):
            return False
        n = len(doc)
        scheduled: dict[int, set[Marker]] = {}
        for var, span in tup:
            scheduled.setdefault(span.start, set()).add(Open(var))
            scheduled.setdefault(span.end, set()).add(Close(var))

        def block(position: int) -> frozenset[Marker]:
            return frozenset(scheduled.get(position, ()))

        # prefix sums for "no marker strictly inside a reference region"
        marker_positions = sorted(scheduled)

        def markers_in_range(lo: int, hi: int) -> bool:
            """Any marker at a span position p with lo <= p <= hi?"""
            import bisect

            index = bisect.bisect_left(marker_positions, lo)
            return index < len(marker_positions) and marker_positions[index] <= hi

        # configuration: (state, position, consumed markers at position+1)
        start = [(state, 0, frozenset()) for state in self.nfa.initial]
        seen = set(start)
        stack = list(start)
        while stack:
            state, pos, consumed = stack.pop()
            if (
                pos == n
                and state in self.nfa.accepting
                and consumed == block(n + 1)
            ):
                return True
            here_block = block(pos + 1)
            for symbol, target in self.nfa.arcs_from(state):
                configs = []
                if symbol is EPSILON:
                    configs.append((target, pos, consumed))
                elif isinstance(symbol, Marker):
                    if symbol in here_block and symbol not in consumed:
                        configs.append((target, pos, consumed | {symbol}))
                elif isinstance(symbol, Ref):
                    span = tup.get(symbol.var)
                    if span is None:
                        continue
                    factor = span.extract(doc)
                    if not doc.startswith(factor, pos):
                        continue
                    if factor:
                        if consumed != here_block:
                            continue  # markers before the factor must be done
                        if markers_in_range(pos + 2, pos + len(factor)):
                            continue  # a marker would fall inside the copy
                        configs.append((target, pos + len(factor), frozenset()))
                    else:
                        configs.append((target, pos, consumed))
                else:
                    if (
                        pos < n
                        and symbol_matches(symbol, doc[pos])
                        and consumed == here_block
                    ):
                        configs.append((target, pos + 1, frozenset()))
                for config in configs:
                    if config not in seen:
                        seen.add(config)
                        stack.append(config)
        return False

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def _status_reachable(self) -> set[tuple[int, tuple]]:
        """Reachable (state, per-variable status) pairs on *useful* states,
        pruning transitions that could not occur on a valid ref-word."""
        variables = sorted(self._variables)
        index = {var: i for i, var in enumerate(variables)}
        useful = self.nfa.coreachable_states()
        start_status = tuple([_UNSEEN] * len(variables))
        seen = {
            (state, start_status)
            for state in self.nfa.initial
            if state in useful
        }
        stack = list(seen)
        while stack:
            state, status = stack.pop()
            for symbol, target in self.nfa.arcs_from(state):
                if target not in useful:
                    continue
                new_status = status
                if isinstance(symbol, Marker):
                    i = index[symbol.var]
                    expected = _UNSEEN if symbol.is_open else _OPEN
                    if status[i] != expected:
                        continue
                    updated = list(status)
                    updated[i] = _OPEN if symbol.is_open else _CLOSED
                    new_status = tuple(updated)
                elif isinstance(symbol, Ref):
                    if status[index[symbol.var]] == _OPEN:
                        continue  # reference inside its own span: invalid
                node = (target, new_status)
                if node not in seen:
                    seen.add(node)
                    stack.append(node)
        return seen

    def is_sequential(self) -> bool:
        """True if on every useful run, references occur only after their
        variable's closing marker."""
        variables = sorted(self._variables)
        index = {var: i for i, var in enumerate(variables)}
        for state, status in self._status_reachable():
            for symbol, _ in self.nfa.arcs_from(state):
                if isinstance(symbol, Ref) and status[index[symbol.var]] != _CLOSED:
                    if state in self.nfa.coreachable_states():
                        return False
        return True

    def _require_sequential(self) -> None:
        if not self.is_sequential():
            raise UnsupportedSpannerError(
                "refl-spanner evaluation requires sequential references "
                "(every reference after its variable closed)"
            )

    def is_reference_bounded(self) -> bool:
        """True if some bound k limits the references per variable in every
        accepted word (Section 3.2) — equivalently, no reference arc lies on
        a cycle of useful states."""
        useful = self.nfa.reachable_states() & self.nfa.coreachable_states()
        # build adjacency over useful states
        adjacency: dict[int, list[int]] = {s: [] for s in useful}
        ref_arcs: list[tuple[int, int]] = []
        for source, symbol, target in self.nfa.arcs():
            if source in useful and target in useful:
                adjacency[source].append(target)
                if isinstance(symbol, Ref):
                    ref_arcs.append((source, target))
        if not ref_arcs:
            return True

        def reaches(start: int, goal: int) -> bool:
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                if node == goal:
                    return True
                for nxt in adjacency[node]:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return False

        return not any(reaches(target, source) for source, target in ref_arcs)

    # ------------------------------------------------------------------
    # translation to core spanners (Section 3.2)
    # ------------------------------------------------------------------
    def to_core(self):
        """Translate a reference-bounded refl-spanner into a core spanner.

        Every reference arc ``q --x--> q'`` is replaced by a fresh capture
        ``y▷ Σ* ◁y``; a string-equality selection ``ς=_{x, y, …}`` then
        forces every copy to equal the content of ``x``, and the fresh
        variables are projected away.  This is the construction sketched in
        Section 3.2 of the paper.
        """
        from repro.automata.vset import VSetAutomaton
        from repro.core.alphabet import DOT
        from repro.spanners.core import Prim

        if not self.is_reference_bounded():
            raise UnsupportedSpannerError(
                "refl-spanner is not reference-bounded; it has no core "
                "equivalent ([9, Theorem 6.1])"
            )
        nfa = NFA()
        nfa.add_states(self.nfa.num_states)
        nfa.initial = set(self.nfa.initial)
        nfa.accepting = set(self.nfa.accepting)
        groups: dict[str, set[str]] = {var: {var} for var in self._variables}
        counter = 0
        for source, symbol, target in self.nfa.arcs():
            if isinstance(symbol, Ref):
                copy = f"{symbol.var}~ref{counter}#"
                counter += 1
                groups[symbol.var].add(copy)
                opened = nfa.add_state()
                body = nfa.add_state()
                nfa.add_arc(source, Open(copy), opened)
                nfa.add_arc(opened, EPSILON, body)
                nfa.add_arc(body, DOT, body)
                nfa.add_arc(body, Close(copy), target)
            else:
                nfa.add_arc(source, symbol, target)
        all_variables = frozenset(
            var for group in groups.values() for var in group
        )
        expr = Prim(VSetAutomaton(nfa, all_variables))
        result = expr
        for var in sorted(self._variables):
            if len(groups[var]) > 1:
                result = result.select_equal(frozenset(groups[var]))
        return result.project(self._variables)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReflSpanner(variables={sorted(self._variables)})"


def core_to_refl_concat(pattern: str, group) -> ReflSpanner:
    """Translate ``ς=_group(⟦pattern⟧)`` into a refl-spanner.

    Supported fragment (the paper's (2)→(3) and β→β′ examples): *pattern*
    parses to a concatenation in which each variable of *group* is captured
    by exactly one top-level capture, so the captured spans are pairwise
    non-overlapping by construction.  The leftmost capture keeps its
    variable with its content language refined to the **intersection** of
    all the group's content languages; every other capture's body is
    replaced by a reference to the leftmost variable.
    """
    group = frozenset(group)
    node = parse_regex(pattern)
    regex_ast.check_capture_validity(node)
    parts = list(node.parts) if isinstance(node, regex_ast.Concat) else [node]
    capture_slots: dict[str, int] = {}
    for position, part in enumerate(parts):
        if isinstance(part, regex_ast.Capture) and part.var in group:
            capture_slots[part.var] = position
    missing = group - set(capture_slots)
    if missing:
        raise UnsupportedSpannerError(
            f"variables {sorted(missing)} are not top-level concatenation "
            f"captures; the general core→refl translation is out of scope"
        )
    for var in group:
        inner_vars = regex_ast.variables_of(parts[capture_slots[var]].inner)
        if inner_vars:
            raise UnsupportedSpannerError(
                f"capture of {var!r} contains nested captures "
                f"{sorted(inner_vars)}: equality group is not non-overlapping"
            )
    ordered = sorted(capture_slots, key=capture_slots.get)
    leader, followers = ordered[0], ordered[1:]
    # content language intersection (the γ of the paper's β′ example)
    content = compile_ast(parts[capture_slots[leader]].inner)
    for var in followers:
        content = nfa_intersection(content, compile_ast(parts[capture_slots[var]].inner))
    # assemble the ref-language NFA: parts in order, with substitutions
    from repro.automata.ops import concat as nfa_concat

    pieces = []
    for position, part in enumerate(parts):
        if position == capture_slots.get(leader):
            open_nfa = _marker_nfa(Open(leader))
            close_nfa = _marker_nfa(Close(leader))
            pieces.append(nfa_concat(open_nfa, content, close_nfa))
        elif isinstance(part, regex_ast.Capture) and part.var in followers:
            pieces.append(
                nfa_concat(
                    _marker_nfa(Open(part.var)),
                    _marker_nfa(Ref(leader)),
                    _marker_nfa(Close(part.var)),
                )
            )
        else:
            pieces.append(compile_ast(part))
    nfa = nfa_concat(*pieces)
    return ReflSpanner(nfa, regex_ast.variables_of(node))


def _marker_nfa(symbol) -> NFA:
    nfa = NFA()
    source = nfa.add_state(initial=True)
    target = nfa.add_state(accepting=True)
    nfa.add_arc(source, symbol, target)
    return nfa
