"""Regular spanners: the user-facing representation.

A :class:`RegularSpanner` bundles a vset-automaton with its compiled
deterministic extended form and exposes evaluation, streaming enumeration
(Section 2.5), model checking, and the algebra operations under which
regular spanners are closed (union, projection, natural join, renaming).

Construct one from a regex-formula (:meth:`RegularSpanner.from_regex`) or
from an explicit automaton (:meth:`RegularSpanner.from_automaton`).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.automata.vset import VSetAutomaton
from repro.core.spanner import Spanner
from repro.core.spans import SpanRelation, SpanTuple
from repro.enumeration.constant_delay import Enumerator
from repro.regex.compile import spanner_from_regex

__all__ = ["RegularSpanner"]


class RegularSpanner(Spanner):
    """A regular spanner with a cached compiled enumeration pipeline."""

    def __init__(self, automaton: VSetAutomaton) -> None:
        self.automaton = automaton
        self._enumerator: Enumerator | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_regex(cls, pattern: str, functional: bool | None = None) -> "RegularSpanner":
        """Compile a regex-formula, e.g. ``"!x{(a|b)*}!y{b}!z{(a|b)*}"``."""
        return cls(spanner_from_regex(pattern, functional))

    @classmethod
    def from_automaton(cls, automaton: VSetAutomaton) -> "RegularSpanner":
        return cls(automaton)

    # ------------------------------------------------------------------
    # Spanner interface
    # ------------------------------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        return self.automaton.variables

    @property
    def functional(self) -> bool:
        return self.automaton.functional

    def enumerator(self) -> Enumerator:
        """The compiled two-phase enumerator (built once, then cached)."""
        if self._enumerator is None:
            self._enumerator = Enumerator(self.automaton)
        return self._enumerator

    def evaluate(self, doc: str, budget=None) -> SpanRelation:
        return SpanRelation(self.variables, self.enumerate(doc, budget))

    def enumerate(self, doc: str, budget=None) -> Iterator[SpanTuple]:
        """Stream ``S(doc)`` with linear preprocessing and constant delay.

        An optional :class:`~repro.util.Budget` bounds wall-clock time,
        steps, and index size (:class:`~repro.errors.EvaluationLimitError`
        subclasses instead of hanging)."""
        yield from self.enumerator().enumerate(doc, budget)

    def model_check(self, doc: str, tup: SpanTuple) -> bool:
        return self.automaton.model_check(doc, tup)

    def is_nonempty_on(self, doc: str) -> bool:
        """PTIME NonEmptiness: markers read as ε (Section 2.4)."""
        return self.automaton.nonemptiness_nfa().accepts(doc)

    # ------------------------------------------------------------------
    # algebra (regular-closed operations)
    # ------------------------------------------------------------------
    def union(self, other: "RegularSpanner") -> "RegularSpanner":
        return RegularSpanner(self.automaton.union(other.automaton))

    def project(self, keep) -> "RegularSpanner":
        return RegularSpanner(self.automaton.project(frozenset(keep)))

    def join(self, other: "RegularSpanner") -> "RegularSpanner":
        """Natural join (strict schemaless semantics: shared variables are
        either defined by both operands at the same span, or by neither)."""
        return RegularSpanner(self.automaton.join(other.automaton))

    def difference(self, other: "RegularSpanner") -> "RegularSpanner":
        """Spanner difference (regular spanners are closed under it, [9])."""
        return RegularSpanner(self.automaton.difference(other.automaton))

    def minimized(self) -> "RegularSpanner":
        """A canonical minimal representation of the same spanner.

        Normalise to the canonical marker order, determinise, minimise the
        DFA, and re-embed — the resulting automaton is the minimal DFA of
        the spanner's canonical subword-marked language, so two equivalent
        spanners minimise to isomorphic automata.
        """
        from repro.automata.dfa import determinize, dfa_to_nfa
        from repro.automata.vset import VSetAutomaton

        canonical = self.automaton.normalized().nfa
        minimal = determinize(canonical).minimize()
        return RegularSpanner(
            VSetAutomaton(
                dfa_to_nfa(minimal).trim(), self.variables, self.automaton.functional
            )
        )

    def rename(self, renaming: Mapping[str, str]) -> "RegularSpanner":
        return RegularSpanner(self.automaton.rename(renaming))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegularSpanner(variables={sorted(self.variables)})"
