"""Core spanners: the algebra ``[RGX]^{∪, ⋈, π, ς=}`` and the
core-simplification lemma (paper Sections 1, 2.3).

A :class:`CoreSpanner` is an expression tree over

* primitive regular spanners (regex-formulas or vset-automata),
* union ``∪``, natural join ``⋈``, projection ``π``, and
* the (non-regular!) string-equality selection ``ς=_Z``.

Two evaluation strategies are provided:

* :meth:`CoreSpanner.evaluate_direct` — recursive evaluation over span
  relations, the textbook semantics;
* :meth:`CoreSpanner.evaluate` — via the **core-simplification normal form**
  ``π_Y(ς=_{Z1} … ς=_{Zk}(⟦M⟧))`` computed by :meth:`CoreSpanner.simplify`.
  The compiler is a constructive proof of the core-simplification lemma:
  union, join, and projection are pushed into a single vset-automaton M,
  leaving only equality selections and one final projection outside.

The only delicate case is pushing ``ς=`` through ``∪``: an equality group
of one branch must not accidentally constrain tuples of the other branch.
The compiler therefore *privatises* equality variables — for each branch,
every variable occurring in one of its equality groups gets a fresh twin
variable marking exactly the same spans (see
:func:`repro.spanners.algebra.duplicate_variable`), and the groups are
rewritten to the twins.  Tuples from the other branch leave the twins
undefined, and under the schemaless convention of [38] the selection then
passes them vacuously.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass

from repro.automata.vset import VSetAutomaton
from repro.core.spanner import Spanner
from repro.core.spans import SpanRelation
from repro.errors import SchemaError
from repro.regex.compile import spanner_from_regex
from repro.spanners.algebra import duplicate_variable, join_lenient

__all__ = [
    "CoreSpanner",
    "Prim",
    "Union",
    "Join",
    "Project",
    "SelectEq",
    "CoreNormalForm",
    "prim",
]

_fresh_counter = itertools.count()


def _fresh_aux(hint: str) -> str:
    """A fresh auxiliary variable name (never collides with user names,
    which cannot contain '#')."""
    return f"{hint}#{next(_fresh_counter)}"


@dataclass(frozen=True)
class CoreNormalForm:
    """The normal form ``π_visible(ς=_{groups}(⟦automaton⟧))``."""

    automaton: VSetAutomaton
    groups: tuple[frozenset[str], ...]
    visible: frozenset[str]

    def evaluate(self, doc: str) -> SpanRelation:
        relation = self.automaton.evaluate(doc)
        for group in self.groups:
            relation = relation.select_equal(doc, group)
        return relation.project(self.visible)

    def equality_variables(self) -> frozenset[str]:
        out: set[str] = set()
        for group in self.groups:
            out |= group
        return frozenset(out)


class CoreSpanner(Spanner, abc.ABC):
    """Base class of core spanner expression trees."""

    _normal_form: CoreNormalForm | None = None

    # -- structure ------------------------------------------------------
    @abc.abstractmethod
    def _compile(self) -> CoreNormalForm:
        """Compile this subtree to the core-simplification normal form."""

    @abc.abstractmethod
    def evaluate_direct(self, doc: str) -> SpanRelation:
        """Recursive relation-level evaluation (the textbook semantics)."""

    # -- public API ------------------------------------------------------
    def simplify(self) -> CoreNormalForm:
        """The (cached) core-simplification normal form of this spanner."""
        if self._normal_form is None:
            self._normal_form = self._compile()
        return self._normal_form

    def evaluate(self, doc: str) -> SpanRelation:
        return self.simplify().evaluate(doc)

    @abc.abstractmethod
    def describe(self) -> str:
        """The algebraic expression in the paper's notation, e.g.
        ``π_{x}(ς=_{x,y}(⟦M0⟧ ⋈ ⟦M1⟧))``."""

    def __str__(self) -> str:
        return self.describe()

    # -- combinators -----------------------------------------------------
    def union(self, other: "CoreSpanner") -> "Union":
        return Union(self, _as_core(other))

    def join(self, other: "CoreSpanner") -> "Join":
        return Join(self, _as_core(other))

    def project(self, keep) -> "Project":
        return Project(self, frozenset(keep))

    def select_equal(self, group) -> "SelectEq":
        return SelectEq(self, frozenset(group))


def _as_core(value) -> CoreSpanner:
    if isinstance(value, CoreSpanner):
        return value
    return prim(value)


def prim(spanner) -> "Prim":
    """Wrap a regex-formula string, vset-automaton, or RegularSpanner."""
    from repro.spanners.regular import RegularSpanner

    if isinstance(spanner, str):
        return Prim(spanner_from_regex(spanner))
    if isinstance(spanner, RegularSpanner):
        return Prim(spanner.automaton)
    if isinstance(spanner, VSetAutomaton):
        return Prim(spanner)
    raise SchemaError(f"cannot build a primitive core spanner from {spanner!r}")


class Prim(CoreSpanner):
    """A primitive regular spanner."""

    def __init__(self, automaton: VSetAutomaton) -> None:
        self.automaton = automaton

    @property
    def variables(self) -> frozenset[str]:
        return self.automaton.variables

    def evaluate_direct(self, doc: str) -> SpanRelation:
        return self.automaton.evaluate(doc)

    def describe(self) -> str:
        return f"⟦M({', '.join(sorted(self.automaton.variables))})⟧"

    def _compile(self) -> CoreNormalForm:
        return CoreNormalForm(self.automaton, (), self.automaton.variables)


class Union(CoreSpanner):
    """Spanner union ``∪`` (schemas merged, schemaless semantics)."""

    def __init__(self, left: CoreSpanner, right: CoreSpanner) -> None:
        self.left = left
        self.right = right

    @property
    def variables(self) -> frozenset[str]:
        return self.left.variables | self.right.variables

    def evaluate_direct(self, doc: str) -> SpanRelation:
        return self.left.evaluate_direct(doc).union(self.right.evaluate_direct(doc))

    def describe(self) -> str:
        return f"({self.left.describe()} ∪ {self.right.describe()})"

    def _compile(self) -> CoreNormalForm:
        left = _privatize(self.left.simplify())
        right = _privatize(self.right.simplify())
        automaton = left.automaton.union(right.automaton)
        return CoreNormalForm(
            automaton,
            left.groups + right.groups,
            left.visible | right.visible,
        )


class Join(CoreSpanner):
    """Natural join ``⋈`` (lenient schemaless semantics)."""

    def __init__(self, left: CoreSpanner, right: CoreSpanner) -> None:
        self.left = left
        self.right = right

    @property
    def variables(self) -> frozenset[str]:
        return self.left.variables | self.right.variables

    def evaluate_direct(self, doc: str) -> SpanRelation:
        return self.left.evaluate_direct(doc).natural_join(
            self.right.evaluate_direct(doc)
        )

    def describe(self) -> str:
        return f"({self.left.describe()} ⋈ {self.right.describe()})"

    def _compile(self) -> CoreNormalForm:
        left = self.left.simplify()
        right = self.right.simplify()
        # hidden (auxiliary / projected-away) variables must not be shared
        # between the operands: only *visible* variables join
        left = _rename_hidden(left)
        right = _rename_hidden(right, avoid=set(left.automaton.variables))
        automaton = join_lenient(left.automaton, right.automaton)
        return CoreNormalForm(
            automaton,
            left.groups + right.groups,
            left.visible | right.visible,
        )


class Project(CoreSpanner):
    """Projection ``π_Y`` onto a subset of the visible variables."""

    def __init__(self, inner: CoreSpanner, keep: frozenset[str]) -> None:
        unknown = keep - inner.variables
        if unknown:
            raise SchemaError(f"projection onto unknown variables {sorted(unknown)}")
        self.inner = inner
        self.keep = keep

    @property
    def variables(self) -> frozenset[str]:
        return self.keep

    def evaluate_direct(self, doc: str) -> SpanRelation:
        return self.inner.evaluate_direct(doc).project(self.keep)

    def describe(self) -> str:
        keep = ",".join(sorted(self.keep))
        return f"π_{{{keep}}}({self.inner.describe()})"

    def _compile(self) -> CoreNormalForm:
        inner = self.inner.simplify()
        # the projection is simply deferred to the outermost level; the
        # dropped variables stay marked in the automaton (they may still be
        # needed by equality groups)
        return CoreNormalForm(inner.automaton, inner.groups, self.keep)


class SelectEq(CoreSpanner):
    """String-equality selection ``ς=_Z`` — the non-regular operator."""

    def __init__(self, inner: CoreSpanner, group: frozenset[str]) -> None:
        unknown = group - inner.variables
        if unknown:
            raise SchemaError(
                f"equality selection on unknown variables {sorted(unknown)}"
            )
        self.inner = inner
        self.group = group

    @property
    def variables(self) -> frozenset[str]:
        return self.inner.variables

    def evaluate_direct(self, doc: str) -> SpanRelation:
        return self.inner.evaluate_direct(doc).select_equal(doc, self.group)

    def describe(self) -> str:
        group = ",".join(sorted(self.group))
        return f"ς=_{{{group}}}({self.inner.describe()})"

    def _compile(self) -> CoreNormalForm:
        inner = self.inner.simplify()
        return CoreNormalForm(
            inner.automaton, inner.groups + (self.group,), inner.visible
        )


# ---------------------------------------------------------------------------
# compilation helpers
# ---------------------------------------------------------------------------
def _privatize(form: CoreNormalForm) -> CoreNormalForm:
    """Rewrite every equality group to fresh twin variables.

    After privatisation, no equality group mentions a variable that any
    *other* normal form could define, so groups from different union
    branches cannot interfere.
    """
    if not form.groups:
        return form
    automaton = form.automaton
    twins: dict[str, str] = {}
    for var in sorted(form.equality_variables()):
        twin = _fresh_aux(var)
        automaton = duplicate_variable(automaton, var, twin)
        twins[var] = twin
    groups = tuple(
        frozenset(twins[var] for var in group) for group in form.groups
    )
    return CoreNormalForm(automaton, groups, form.visible)


def _rename_hidden(
    form: CoreNormalForm, avoid: set[str] | None = None
) -> CoreNormalForm:
    """Rename the hidden (non-visible) variables of a normal form freshly.

    Needed before joins so that auxiliary variables of the two operands do
    not accidentally join with each other or with visible variables.
    """
    avoid = avoid or set()
    hidden = form.automaton.variables - form.visible
    clashes = {var for var in hidden if "#" not in var or var in avoid}
    if not clashes:
        return form
    renaming = {var: _fresh_aux(var) for var in sorted(clashes)}
    automaton = form.automaton.rename(renaming)
    groups = tuple(
        frozenset(renaming.get(var, var) for var in group) for group in form.groups
    )
    return CoreNormalForm(automaton, groups, form.visible)
