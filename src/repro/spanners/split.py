"""Split evaluation and split-correctness (Doleschal et al. [7], cited in
Section 1 of the paper).

Real IE systems rarely run a spanner over a terabyte document in one piece;
they *split* the document (by newlines, by records, …), evaluate per chunk,
and union the shifted results.  That strategy is sound only when the
spanner is *split-correct* with respect to the splitter — [7] studies the
decision problem; this module provides the executable side:

* :func:`split_document` — split by a separator regex, keeping offsets;
* :func:`split_evaluate` — per-chunk evaluation with span shifting;
* :func:`is_split_correct_on` — the per-document correctness check
  (compare with the global evaluation), the empirical companion to [7]'s
  static analysis.
"""

from __future__ import annotations

from repro.automata.nfa import NFA
from repro.core.spanner import Spanner
from repro.core.spans import SpanRelation, SpanTuple
from repro.errors import SchemaError
from repro.regex.compile import compile_nfa

__all__ = ["split_document", "split_evaluate", "is_split_correct_on"]


def _separator_matcher(separator: str | NFA) -> NFA:
    nfa = compile_nfa(separator) if isinstance(separator, str) else separator
    if nfa.accepts(""):
        raise SchemaError("separator language must not contain the empty word")
    return nfa


def split_document(doc: str, separator: str | NFA) -> list[tuple[int, str]]:
    """Split *doc* at maximal leftmost separator matches.

    Returns ``(offset, chunk)`` pairs (0-based offsets); separators are
    dropped; empty chunks are kept (they can still carry empty-span
    matches).  The separator is a plain regex or NFA; matching is greedy
    leftmost-longest, scanning left to right.
    """
    matcher = _separator_matcher(separator)
    chunks: list[tuple[int, str]] = []
    chunk_start = 0
    position = 0
    n = len(doc)
    while position < n:
        # longest separator match starting at `position`
        states = matcher.start_states()
        longest = -1
        index = position
        while states and index < n:
            states = matcher.step_char(states, doc[index])
            index += 1
            if states & matcher.accepting:
                longest = index
        if longest >= 0:
            chunks.append((chunk_start, doc[chunk_start:position]))
            chunk_start = longest
            position = longest
        else:
            position += 1
    chunks.append((chunk_start, doc[chunk_start:]))
    return chunks


def split_evaluate(
    spanner: Spanner, doc: str, separator: str | NFA
) -> SpanRelation:
    """Evaluate per chunk and union the offset-shifted relations.

    Equals the global ``spanner.evaluate(doc)`` exactly when the spanner is
    split-correct w.r.t. the splitter on this document — e.g. a per-record
    extractor split at record boundaries.  Matches crossing a separator are
    *lost* by design; that loss is what :func:`is_split_correct_on`
    detects.
    """
    tuples: list[SpanTuple] = []
    for offset, chunk in split_document(doc, separator):
        for tup in spanner.evaluate(chunk):
            tuples.append(
                SpanTuple((var, span.shift(offset)) for var, span in tup)
            )
    return SpanRelation(spanner.variables, tuples)


def is_split_correct_on(
    spanner: Spanner, doc: str, separator: str | NFA
) -> bool:
    """Does split evaluation equal global evaluation on *doc*?

    (The language-level version of this question — for *all* documents —
    is the split-correctness problem of [7]; per-document checking is the
    pragmatic fallback and the test oracle.)
    """
    return split_evaluate(spanner, doc, separator) == spanner.evaluate(doc)
