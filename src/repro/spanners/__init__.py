"""Spanner representations: regular, core, and refl-spanners."""

from repro.spanners.algebra import duplicate_variable, forbid_variables, join_lenient
from repro.spanners.core import (
    CoreNormalForm,
    CoreSpanner,
    Join,
    Prim,
    Project,
    SelectEq,
    Union,
    prim,
)
from repro.spanners.compose import ComposedSpanner, within
from repro.spanners.refl import ReflSpanner, core_to_refl_concat
from repro.spanners.split import is_split_correct_on, split_document, split_evaluate
from repro.spanners.weighted import (
    BOOLEAN,
    COUNTING,
    PROBABILITY,
    TROPICAL,
    Semiring,
    WeightedSpanner,
)
from repro.spanners.regular import RegularSpanner

__all__ = [
    "BOOLEAN",
    "COUNTING",
    "ComposedSpanner",
    "CoreNormalForm",
    "CoreSpanner",
    "Join",
    "Prim",
    "Project",
    "PROBABILITY",
    "ReflSpanner",
    "RegularSpanner",
    "Semiring",
    "TROPICAL",
    "WeightedSpanner",
    "SelectEq",
    "Union",
    "core_to_refl_concat",
    "duplicate_variable",
    "forbid_variables",
    "is_split_correct_on",
    "join_lenient",
    "split_document",
    "split_evaluate",
    "within",
    "prim",
]
