"""String equality in spanner-datalog — the executable core of the
"[33]: datalog over regular spanners covers all core spanners" claim the
survey states in Section 1.

The only non-regular feature of core spanners is ς= (core-simplification
lemma, Section 2.3).  So to show coverage, it suffices to *define* the
string-equality relation ``StrEq(x, y)`` in datalog over regular spanner
atoms — recursion does what the equality selection does:

    StrEq(x, y) :- Empty(x), Empty(y).
    StrEq(x, y) :- Head_c(x, hx, tx), Head_c(y, hy, ty), StrEq(tx, ty).
                   (one rule per alphabet character c)

where the EDB spanners are

* ``Empty(x)``      — x is an empty span (regex ``.* !x{()} .*``);
* ``Head_c(x,h,t)`` — x is a factor whose first character h spells ``c``
  and whose tail is t (regex ``.* !x{ !h{c} !t{.*} } .*``).

:func:`string_equality_program` builds these rules for a finite alphabet;
:func:`select_equal_program` stacks a user spanner on top, yielding a
datalog program whose answer predicate equals ``ς=_{x,y}(⟦spanner⟧)`` —
cross-checked against the core-spanner evaluator in the test suite.
"""

from __future__ import annotations

from repro.core.spanner import Spanner
from repro.datalog.engine import Atom, Program, Rule
from repro.errors import SchemaError
from repro.regex.compile import spanner_from_regex

__all__ = ["string_equality_program", "select_equal_program"]


def _escaped(ch: str) -> str:
    return "\\" + ch if ch in set("|*+?(){}[].&!\\") else ch


def _strings_edb(alphabet: str):
    """The EDB spanners for Empty and Head_c over *alphabet*."""
    sigma = "|".join(_escaped(ch) for ch in alphabet)
    edb = {
        "Empty": (
            spanner_from_regex(f"({sigma})*!x{{()}}({sigma})*"),
            ("x",),
        )
    }
    for ch in alphabet:
        edb[f"Head_{ch}"] = (
            spanner_from_regex(
                f"({sigma})*!x{{!h{{{_escaped(ch)}}}!t{{({sigma})*}}}}({sigma})*"
            ),
            ("x", "h", "t"),
        )
    return edb


def _streq_rules(alphabet: str) -> list[Rule]:
    rules = [
        Rule(
            Atom("StrEq", ("x", "y")),
            (Atom("Empty", ("x",)), Atom("Empty", ("y",))),
        )
    ]
    for ch in alphabet:
        rules.append(
            Rule(
                Atom("StrEq", ("x", "y")),
                (
                    Atom(f"Head_{ch}", ("x", "hx", "tx")),
                    Atom(f"Head_{ch}", ("y", "hy", "ty")),
                    Atom("StrEq", ("tx", "ty")),
                ),
            )
        )
    return rules


def string_equality_program(alphabet: str) -> Program:
    """A program whose ``StrEq(x, y)`` holds exactly for span pairs with
    equal content (over documents drawn from *alphabet*)."""
    return Program(_strings_edb(alphabet), _streq_rules(alphabet))


def select_equal_program(
    spanner: Spanner, var_x: str, var_y: str, alphabet: str
) -> Program:
    """A program whose ``Answer`` predicate is ``ς=_{x,y}(⟦spanner⟧)``.

    The spanner becomes an EDB predicate ``S``; one extra rule joins it
    with the recursive StrEq relation:

        Answer(x, y) :- S(x, y), StrEq(x, y).
    """
    if var_x not in spanner.variables or var_y not in spanner.variables:
        raise SchemaError(
            f"spanner lacks variables {var_x!r}/{var_y!r}: {sorted(spanner.variables)}"
        )
    edb = _strings_edb(alphabet)
    edb["S"] = (spanner, (var_x, var_y))
    rules = _streq_rules(alphabet)
    rules.append(
        Rule(
            Atom("Answer", ("x", "y")),
            (Atom("S", ("x", "y")), Atom("StrEq", ("x", "y"))),
        )
    )
    return Program(edb, rules)
