"""Datalog over regular spanners (the [33] direction cited in Section 1)."""

from repro.datalog.engine import Atom, Program, Rule
from repro.datalog.strings import select_equal_program, string_equality_program

__all__ = [
    "Atom",
    "Program",
    "Rule",
    "select_equal_program",
    "string_equality_program",
]
