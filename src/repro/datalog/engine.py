"""Datalog over regular spanners (the RGXLog direction of [33],
"Recursive Programs for Document Spanners", cited in Section 1).

The survey notes that datalog over regular spanners covers the whole class
of core spanners.  This module implements the executable side of that
statement:

* **EDB predicates** are regular spanners: evaluating the program on a
  document D first materialises each spanner's span relation over D;
* **rules** are classical positive datalog rules whose variables range over
  ``Spans(D)`` (a finite domain!), evaluated bottom-up with semi-naive
  iteration to a fixpoint;
* recursion is unrestricted — which is exactly what lets a program define
  the *string-equality* relation and therefore simulate ς= (see
  :mod:`repro.datalog.strings` and the paper's claim about [33]).

The implementation is deliberately small: positive datalog, no negation,
no constants — the fragment the coverage theorem needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.spanner import Spanner
from repro.core.spans import Span
from repro.errors import SchemaError

__all__ = ["Atom", "Rule", "Program"]


@dataclass(frozen=True)
class Atom:
    """``predicate(v1, …, vk)`` — arguments are datalog variables."""

    predicate: str
    args: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.predicate:
            raise SchemaError("predicate name must be non-empty")
        for arg in self.args:
            if not isinstance(arg, str) or not arg:
                raise SchemaError(f"atom arguments must be variable names: {arg!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.predicate}({', '.join(self.args)})"


@dataclass(frozen=True)
class Rule:
    """``head :- body1, …, bodyn`` (positive, no constants).

    Safety: every head variable must occur in some body atom.
    """

    head: Atom
    body: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.body:
            raise SchemaError("rules must have a non-empty body")
        bound = {arg for atom in self.body for arg in atom.args}
        unsafe = set(self.head.args) - bound
        if unsafe:
            raise SchemaError(
                f"unsafe rule: head variables {sorted(unsafe)} not bound in body"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.head} :- {', '.join(map(str, self.body))}"


class Program:
    """A spanner-datalog program.

    Parameters
    ----------
    edb:
        Maps EDB predicate names to ``(spanner, arg_variables)``: evaluating
        the spanner on the document and reading off the listed spanner
        variables (in order) yields the predicate's facts.  Tuples that
        leave one of the listed variables undefined are skipped.
    rules:
        The IDB rules.
    """

    def __init__(
        self,
        edb: Mapping[str, tuple[Spanner, tuple[str, ...]]],
        rules: Iterable[Rule],
    ) -> None:
        self.edb = dict(edb)
        self.rules = list(rules)
        self._arities: dict[str, int] = {
            name: len(args) for name, (_, args) in self.edb.items()
        }
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                known = self._arities.setdefault(atom.predicate, len(atom.args))
                if known != len(atom.args):
                    raise SchemaError(
                        f"predicate {atom.predicate} used with arities "
                        f"{known} and {len(atom.args)}"
                    )
        idb = {rule.head.predicate for rule in self.rules}
        clash = idb & set(self.edb)
        if clash:
            raise SchemaError(f"predicates defined both as EDB and IDB: {sorted(clash)}")

    # ------------------------------------------------------------------
    def _edb_facts(self, doc: str) -> dict[str, set[tuple[Span, ...]]]:
        facts: dict[str, set[tuple[Span, ...]]] = {}
        for name, (spanner, args) in self.edb.items():
            unknown = set(args) - set(spanner.variables)
            if unknown:
                raise SchemaError(
                    f"EDB {name} lists variables {sorted(unknown)} the spanner "
                    f"does not have"
                )
            rows: set[tuple[Span, ...]] = set()
            for tup in spanner.evaluate(doc):
                if all(var in tup for var in args):
                    rows.add(tuple(tup[var] for var in args))
            facts[name] = rows
        return facts

    @staticmethod
    def _match(
        atom: Atom,
        fact: tuple[Span, ...],
        binding: dict[str, Span],
    ) -> dict[str, Span] | None:
        extended = dict(binding)
        for var, value in zip(atom.args, fact):
            seen = extended.get(var)
            if seen is None:
                extended[var] = value
            elif seen != value:
                return None
        return extended

    def evaluate(self, doc: str, max_iterations: int = 10_000) -> dict[str, set]:
        """Bottom-up semi-naive fixpoint over ``Spans(doc)``.

        Returns all predicates' fact sets (EDB included).  The domain is
        finite, so termination is guaranteed; *max_iterations* is a safety
        valve only.
        """
        facts = self._edb_facts(doc)
        for name in self._arities:
            facts.setdefault(name, set())
        delta = {name: set(rows) for name, rows in facts.items()}
        for _ in range(max_iterations):
            new_delta: dict[str, set] = {name: set() for name in self._arities}
            produced = False
            for rule in self.rules:
                for fresh in self._apply_rule(rule, facts, delta):
                    if fresh not in facts[rule.head.predicate]:
                        facts[rule.head.predicate].add(fresh)
                        new_delta[rule.head.predicate].add(fresh)
                        produced = True
            if not produced:
                return facts
            delta = new_delta
        raise SchemaError("datalog fixpoint did not converge (impossible on a finite domain)")

    def _apply_rule(self, rule: Rule, facts, delta):
        """Semi-naive: at least one body atom must read from the delta."""
        body = rule.body
        for delta_index in range(len(body)):
            bindings = [dict()]
            for position, atom in enumerate(body):
                source = (
                    delta[atom.predicate]
                    if position == delta_index
                    else facts[atom.predicate]
                )
                extended = []
                for binding in bindings:
                    for fact in source:
                        match = self._match(atom, fact, binding)
                        if match is not None:
                            extended.append(match)
                bindings = extended
                if not bindings:
                    break
            for binding in bindings:
                yield tuple(binding[var] for var in rule.head.args)

    def query(self, doc: str, predicate: str) -> set[tuple[Span, ...]]:
        """Evaluate and return one predicate's facts."""
        facts = self.evaluate(doc)
        if predicate not in facts:
            raise SchemaError(f"unknown predicate {predicate!r}")
        return facts[predicate]
