"""Shard-parallel evaluation backend and bulk query machinery.

The ``(σ, T, T_em)`` algebra that powers compressed spanner evaluation
(Schmid & Schweikardt [39]) is associative, which makes plain-text
evaluation a textbook map-reduce: split the document into shards, fold
each shard's per-character entries on a worker, fold the shard entries.
This package provides

* the exact, batched fold kernel (:mod:`repro.parallel.fold`) whose
  per-level numpy operations release the GIL — thread workers give real
  wall-clock speedup (≥ 2× at 4 workers on ≥ 256 KiB documents, asserted
  by ``benchmarks/bench_parallel.py``);
* the worker-pool backends (:mod:`repro.parallel.pool`): ``"thread"``
  for production, ``"serial"`` as the bit-for-bit differential anchor;
* the entry points (:mod:`repro.parallel.api`):
  :func:`document_matrices` / :func:`is_nonempty_text` for one large
  document, :func:`preprocess_bulk` for warming many stored documents —
  the layer under :meth:`SpannerDB.query_bulk
  <repro.db.SpannerDB.query_bulk>` and the batched request type of
  :mod:`repro.serve`.

Every entry is bit-for-bit equal across backends, worker counts, and
shard splits; the differential test suite asserts this against the SLP
``preprocess`` path rather than assuming it.
"""

from repro.parallel.api import (
    as_evaluator,
    document_matrices,
    is_nonempty_text,
    preprocess_bulk,
)
from repro.parallel.fold import (
    DEFAULT_CHUNK,
    char_stack,
    combine,
    fold_entries,
    identity_entry,
    reduce_stack,
    shard_spans,
    text_entry,
)
from repro.parallel.pool import BACKENDS, default_workers, run_tasks

__all__ = [
    "BACKENDS",
    "DEFAULT_CHUNK",
    "as_evaluator",
    "char_stack",
    "combine",
    "default_workers",
    "document_matrices",
    "fold_entries",
    "identity_entry",
    "is_nonempty_text",
    "preprocess_bulk",
    "reduce_stack",
    "run_tasks",
    "shard_spans",
    "text_entry",
]
