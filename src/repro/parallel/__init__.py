"""Shard-parallel evaluation backend and bulk query machinery.

The ``(σ, T, T_em)`` algebra that powers compressed spanner evaluation
(Schmid & Schweikardt [39]) is associative, which makes plain-text
evaluation a textbook map-reduce: split the document into shards, fold
each shard's per-character entries on a worker, fold the shard entries.
This package provides

* the exact, batched fold kernel (:mod:`repro.parallel.fold`) whose
  per-level numpy operations release the GIL — thread workers give real
  wall-clock speedup (≥ 2× at 4 workers on ≥ 256 KiB documents, asserted
  by ``benchmarks/bench_parallel.py``);
* the worker-pool backends (:mod:`repro.parallel.pool`): ``"thread"``
  for production in one address space, ``"process"`` for crash-isolated
  evaluation on the supervised pool of :mod:`repro.parallel.procpool`
  (worker deaths are detected, workers respawned, lost shards retried),
  ``"serial"`` as the bit-for-bit differential anchor — plus ``"auto"``
  resolution with circuit-broken degradation
  (:func:`~repro.parallel.api.resolve_backend`);
* leak-proof zero-copy transport for the process backend
  (:mod:`repro.parallel.shm`): one shared-memory segment per request,
  created only by the parent and unlinked on success, failure, and
  interpreter exit alike;
* the entry points (:mod:`repro.parallel.api`):
  :func:`document_matrices` / :func:`is_nonempty_text` for one large
  document, :func:`preprocess_bulk` for warming many stored documents —
  the layer under :meth:`SpannerDB.query_bulk
  <repro.db.SpannerDB.query_bulk>` and the batched request type of
  :mod:`repro.serve`.

Every entry is bit-for-bit equal across backends, worker counts, and
shard splits; the differential test suite asserts this against the SLP
``preprocess`` path rather than assuming it.
"""

from repro.parallel.api import (
    as_evaluator,
    document_matrices,
    is_nonempty_text,
    preprocess_bulk,
    process_breaker,
    resolve_backend,
)
from repro.parallel.fold import (
    DEFAULT_CHUNK,
    char_stack,
    combine,
    fold_entries,
    identity_entry,
    indexed_entry,
    reduce_stack,
    shard_spans,
    table_stack,
    text_entry,
)
from repro.parallel.pool import (
    BACKENDS,
    default_workers,
    run_tasks,
    usable_cores,
)
from repro.parallel.procpool import (
    ProcCall,
    ProcPool,
    configure_pool,
    get_pool,
    pool_stats,
    shutdown_pool,
)
from repro.parallel.shm import (
    SegmentRegistry,
    ShmArray,
    attached_job,
    live_segments,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_CHUNK",
    "ProcCall",
    "ProcPool",
    "SegmentRegistry",
    "ShmArray",
    "as_evaluator",
    "attached_job",
    "char_stack",
    "combine",
    "configure_pool",
    "default_workers",
    "document_matrices",
    "fold_entries",
    "get_pool",
    "identity_entry",
    "indexed_entry",
    "is_nonempty_text",
    "live_segments",
    "pool_stats",
    "preprocess_bulk",
    "process_breaker",
    "reduce_stack",
    "resolve_backend",
    "run_tasks",
    "shard_spans",
    "shutdown_pool",
    "table_stack",
    "text_entry",
    "usable_cores",
]
