"""The associative fold kernel behind shard-parallel evaluation.

A plain-text document is, for evaluation purposes, a product of per-
character ``(σ, T, T_em)`` entries — the same algebra
:meth:`repro.slp.SLPSpannerEvaluator.preprocess` computes bottom-up over
an SLP's parse tree:

* ``σ`` composes as partial functions (``_DEAD`` absorbs),
* ``T_em`` of a pair is ``T_em_L · T_R  ∪  σ_L-pull(T_em_R)`` (the first
  emission is in the left part, or the left part runs pure and the first
  emission is in the right part),
* ``T = T_em ∪ σ`` (a run either emits or is exactly the pure run).

Every operation is an **exact** boolean/integer computation (the float32
products are exact for 0/1 operands with |Q| < 2²⁴), so the combine is
associative *bit-for-bit*: any parenthesisation — the SLP's parse tree,
this module's balanced pairwise reduction, or a k-way shard split — packs
to identical words.  That is what lets :mod:`repro.parallel` split a
document into shards, fold each shard on its own worker, and fold the
shard entries on the caller's thread, with equality to the serial result
asserted (not hoped for) by the differential test suite.

Unlike ``preprocess`` — whose per-node Python loop is the right shape for
a *dedup-friendly* SLP DAG — the fold here is written so that worker
threads actually run concurrently under the GIL: a whole reduction level
is advanced with a handful of *batched* numpy operations (stacked
float32 matmul, ``take_along_axis`` gathers, word-wise unions) on
``(m, q, ·)`` arrays, with no per-entry Python objects anywhere inside a
shard.  The heavy operations release the GIL, so k thread workers give
real speedup (benchmarks/bench_parallel.py asserts ≥ 2× at 4 workers on
≥ 256 KiB documents).  The price is that no duplicate-product collapsing
happens inside a shard — O(n·|Q|³) arithmetic instead of the SLP path's
O(|S|·|Q|³) — which is why the compressed path still wins on repetitive
documents (see ``docs/PERFORMANCE.md``).

Memory is bounded by folding in *chunks*: each chunk of ``chunk_size``
characters is reduced to a single entry before the next chunk is touched,
so the transient float32 working set is ``O(chunk_size · |Q|²)`` per
worker regardless of document length.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.bitmat import (
    BitMatrix,
    function_bits,
    function_bits_many,
    pack_rows,
    unpack_rows,
    words_for,
)

__all__ = [
    "DEFAULT_CHUNK",
    "char_stack",
    "combine",
    "fold_entries",
    "identity_entry",
    "indexed_entry",
    "reduce_stack",
    "shard_spans",
    "table_stack",
    "text_entry",
]

_DEAD = -1

#: characters folded per reduction block: bounds each worker's transient
#: float32 stacks at ``3 · chunk/2 · |Q|² · 4`` bytes while keeping the
#: batched matmuls large enough to amortise numpy call overhead
DEFAULT_CHUNK = 1024

#: an entry is (σ: (q,) int64, T: BitMatrix, T_em: BitMatrix) — the same
#: triple SLPSpannerEvaluator caches per node; a *stack* is the batched
#: form (σ: (m, q) int64, T rows: (m, q, w) uint64, T_em rows: ditto)


def identity_entry(q: int):
    """The ε-document entry: σ = id, T = identity bits, T_em = ∅.

    Neutral element of :func:`combine` on both sides — folding zero
    characters must behave exactly like reading nothing."""
    sigma = np.arange(q, dtype=np.int64)
    t_em = BitMatrix(np.zeros((q, words_for(q)), dtype=np.uint64), q)
    return sigma, function_bits(sigma, q), t_em


def shard_spans(n: int, shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[start, end)`` spans covering ``[0, n)``.

    At most *shards* spans, never an empty one; sizes differ by ≤ 1 so no
    worker becomes the straggler by construction."""
    shards = max(1, min(int(shards), n)) if n else 1
    base, extra = divmod(n, shards)
    spans = []
    start = 0
    for index in range(shards):
        end = start + base + (1 if index < extra else 0)
        if end > start:
            spans.append((start, end))
        start = end
    return spans


def char_stack(table, text: str, q: int):
    """The per-character entry stack of *text* as batched arrays.

    *table* maps every distinct character of *text* to its ``(σ, T,
    T_em)`` entry (prefetch via
    :meth:`repro.slp.SLPSpannerEvaluator.char_entries` so workers never
    touch the locked char-table store).  Character codes are extracted
    with one UTF-32 encode and deduplicated with ``np.unique`` — no
    per-position Python loop."""
    codes = np.frombuffer(text.encode("utf-32-le"), dtype=np.uint32)
    distinct, inverse = np.unique(codes, return_inverse=True)
    sigmas = np.stack([table[chr(code)][0] for code in distinct])
    t_rows = np.stack([table[chr(code)][1].rows for code in distinct])
    t_em_rows = np.stack([table[chr(code)][2].rows for code in distinct])
    return sigmas[inverse], t_rows[inverse], t_em_rows[inverse]


def table_stack(table, chars):
    """The distinct-character entry stack of *table*, in *chars* order.

    The dense form the process backend ships through shared memory: three
    plain arrays — ``σ`` ``(c, q)`` int64, ``T`` and ``T_em`` rows
    ``(c, q, w)`` uint64 — with row *i* belonging to ``chars[i]``.
    Together with a per-position index array (:func:`indexed_entry`) they
    carry exactly the information of the char-table dict, with no Python
    objects to pickle."""
    chars = list(chars)
    sigmas = np.stack([table[ch][0] for ch in chars])
    t_rows = np.stack([table[ch][1].rows for ch in chars])
    t_em_rows = np.stack([table[ch][2].rows for ch in chars])
    return sigmas, t_rows, t_em_rows


def indexed_entry(
    stack, inverse, q: int, *, chunk_size: int = DEFAULT_CHUNK, budget=None
):
    """``(σ, T, T_em)`` of the text whose position *i* has table row
    ``inverse[i]`` — :func:`text_entry` for pre-indexed array input.

    The chunking, reduction order, and arithmetic are identical to
    :func:`text_entry` (each gathered chunk stack holds the same values
    ``char_stack`` would build), so the folded entry is bit-for-bit the
    same — that equality is what makes the process backend differentially
    testable against the serial one."""
    sigmas, t_rows, t_em_rows = stack
    inverse = np.asarray(inverse)
    if inverse.size == 0:
        return identity_entry(q)
    chunk_size = max(2, int(chunk_size))
    chunk_entries = []
    for start in range(0, inverse.size, chunk_size):
        index = inverse[start : start + chunk_size]
        chunk_entries.append(
            reduce_stack(
                (sigmas[index], t_rows[index], t_em_rows[index]), q, budget
            )
        )
    return fold_entries(chunk_entries, q, budget)


def _combine_level(sigmas, t_rows, t_em_rows, q: int):
    """One reduction level: combine entries (0,1), (2,3), … batched.

    An odd trailing entry is carried up unchanged — associativity makes
    the resulting parenthesisation irrelevant to the folded value."""
    m = sigmas.shape[0]
    k = m // 2
    sig_l, sig_r = sigmas[0 : 2 * k : 2], sigmas[1 : 2 * k : 2]
    # T_em_L · T_R through the exact float32 counting product, then one
    # batched repack; this matmul is where workers spend their time, and
    # it runs with the GIL released
    a32 = unpack_rows(t_em_rows[0 : 2 * k : 2], q).astype(np.float32)
    b32 = unpack_rows(t_rows[1 : 2 * k : 2], q).astype(np.float32)
    product_rows = pack_rows(np.matmul(a32, b32) > 0.5)
    # σ composition and the σ_L-pull of T_em_R, dead-state aware
    dead_l = sig_l == _DEAD
    index = np.where(dead_l, 0, sig_l)
    sigma = np.where(dead_l, _DEAD, np.take_along_axis(sig_r, index, axis=1))
    pulled = np.take_along_axis(
        t_em_rows[1 : 2 * k : 2], index[:, :, None], axis=1
    )
    pulled[dead_l] = 0
    t_em_new = product_rows | pulled
    t_new = t_em_new | function_bits_many(sigma, q)
    if m % 2:
        sigma = np.concatenate([sigma, sigmas[-1:]])
        t_new = np.concatenate([t_new, t_rows[-1:]])
        t_em_new = np.concatenate([t_em_new, t_em_rows[-1:]])
    return sigma, t_new, t_em_new


def reduce_stack(stack, q: int, budget=None):
    """Fold an entry stack down to one entry (levelwise pairwise combine).

    A :class:`~repro.util.Budget` is charged one step per combined pair
    (the same O(|Q|³)-product unit ``preprocess`` charges per fresh node)
    and ``charge_bytes`` guards each level's transient float32 stacks."""
    sigmas, t_rows, t_em_rows = stack
    if sigmas.shape[0] == 0:
        return identity_entry(q)
    while sigmas.shape[0] > 1:
        if budget is not None:
            pairs = sigmas.shape[0] // 2
            budget.step(pairs)
            budget.charge_bytes(
                3 * pairs * q * q * 4, what="parallel fold level"
            )
        sigmas, t_rows, t_em_rows = _combine_level(sigmas, t_rows, t_em_rows, q)
    return (
        sigmas[0],
        BitMatrix(np.ascontiguousarray(t_rows[0]), q),
        BitMatrix(np.ascontiguousarray(t_em_rows[0]), q),
    )


def fold_entries(entries, q: int, budget=None):
    """Fold already-scalar entries (e.g. one per shard) into one."""
    entries = list(entries)
    if not entries:
        return identity_entry(q)
    if len(entries) == 1:
        return entries[0]
    stack = (
        np.stack([entry[0] for entry in entries]),
        np.stack([entry[1].rows for entry in entries]),
        np.stack([entry[2].rows for entry in entries]),
    )
    return reduce_stack(stack, q, budget)


def combine(left, right, q: int):
    """The binary combine (exposed for tests and incremental callers)."""
    return fold_entries([left, right], q)


def text_entry(
    table, text: str, q: int, *, chunk_size: int = DEFAULT_CHUNK, budget=None
):
    """``(σ, T, T_em)`` of one text shard: chunked balanced reduction.

    Each ``chunk_size`` block of characters is reduced fully before the
    next is materialised, then the per-chunk entries are folded — the
    value is independent of *chunk_size* (associativity), only the peak
    working set changes."""
    if not text:
        return identity_entry(q)
    chunk_size = max(2, int(chunk_size))
    chunk_entries = []
    for start in range(0, len(text), chunk_size):
        piece = text[start : start + chunk_size]
        chunk_entries.append(
            reduce_stack(char_stack(table, piece, q), q, budget)
        )
    return fold_entries(chunk_entries, q, budget)
