"""Zero-copy buffer transport for the process backend, leak-proof.

Shard fan-out to worker *processes* (:mod:`repro.parallel.procpool`)
cannot share numpy arrays the way threads do, and pickling dense
mirrors through pipes would erase the win the workers exist for.  This
module moves the packed buffers — character-code arrays, per-character
``(σ, T, T_em)`` stacks, :class:`~repro.kernels.bitmat.BitMatrix` /
``PackedVec`` words, serialized SLP arenas — through
``multiprocessing.shared_memory`` instead: the parent lays every input
array and every preallocated result slot out in **one segment per
request**, workers attach, compute, and write results in place, and the
only bytes that cross a pipe are task descriptors and acknowledgements.

The hard part of shared memory is not sharing it but *unlinking* it: a
worker that is OOM-killed or SIGKILLed mid-fold can never run its
cleanup, and a leaked ``/dev/shm`` segment outlives the process that
lost it.  The leak-proofing contract here is structural, and
``tools/check_shm_hygiene.py`` lints it:

* **only the parent creates segments** — workers attach to existing
  names and never own one, so no worker death can leak a segment;
* every creation goes through a :class:`SegmentRegistry`, whose
  ``close()`` runs on success, failure, and (via ``atexit``) interpreter
  exit — the unlink does not depend on the request finishing cleanly;
* worker-side attachments detach from Python's ``resource_tracker``
  immediately (:func:`attach`), because the tracker of an *attaching*
  process would otherwise unlink the parent's live segment when that
  worker exits (bpo-38119) — exactly the double-free this module exists
  to prevent.

:func:`live_segments` reports every segment this process created and has
not yet unlinked; the test suite asserts it is empty after every
process-backend test, crash tests included.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ParallelError

__all__ = [
    "SEGMENT_PREFIX",
    "SegmentRegistry",
    "ShmArray",
    "attach",
    "attached_job",
    "live_segments",
]

#: every segment this module creates is named
#: ``repro-shm-<pid>-<token>-<counter>``: the pid plus a random token make
#: the name host-unique (concurrent repro processes never collide, nor does
#: a restart collide with segments a SIGKILLed predecessor leaked), the
#: counter makes it unique within a process, and the prefix keeps stray
#: segments attributable (grep-able in ``/dev/shm``)
SEGMENT_PREFIX = "repro-shm"

_ALIGN = 64  # align each array's offset; keeps views cache-line friendly

_live_lock = threading.Lock()
_live: dict[str, object] = {}  # name -> SharedMemory (created, not yet unlinked)
_counter = 0


def _shared_memory():
    """Deferred stdlib import (importing it spawns no tracker by itself,
    but keeping it out of module import keeps cold starts lean)."""
    from multiprocessing import shared_memory

    return shared_memory


def _segment_name() -> str:
    """A fresh host-unique segment name (see :data:`SEGMENT_PREFIX`)."""
    global _counter
    with _live_lock:
        _counter += 1
        count = _counter
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}-{count}"


def live_segments() -> list[str]:
    """Names of segments created by this process and not yet unlinked.

    The leak oracle: after any process-backend request — successful,
    failed, or chaos-killed — this list must be empty again once the
    request's :class:`SegmentRegistry` closed."""
    with _live_lock:
        return sorted(_live)


def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    with _live_lock:
        leftovers = list(_live.values())
        _live.clear()
    for segment in leftovers:
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass


atexit.register(_cleanup_at_exit)


_forked_child = False


def _reset_after_fork() -> None:  # pragma: no cover - runs in the child
    """A forked worker inherits the parent's ``_live`` table by memory
    copy; if its own ``atexit`` ran :func:`_cleanup_at_exit` it would
    unlink segments the *parent* still owns.  Ownership never crosses
    ``fork()``: drop the inherited entries (close/unlink stay with the
    parent).  The ``_forked_child`` flag tells :func:`attach` that this
    process may also share the parent's resource tracker."""
    global _forked_child
    _forked_child = True
    with _live_lock:
        _live.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


@dataclass(frozen=True)
class ShmArray:
    """A picklable pointer to one numpy array inside a shared segment."""

    segment: str
    dtype: str
    shape: tuple
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


class SegmentRegistry:
    """Owner of every shared-memory segment of one parent-side request.

    A context manager: segments created inside the ``with`` block are
    unlinked when it exits — on the success path, on any exception, and
    (should the process die with registries open) by the module's
    ``atexit`` hook.  Unlink is idempotent; a vanished segment is not an
    error during cleanup."""

    def __init__(self) -> None:
        self._segments: list = []
        self._closed = False

    # -- creation (the only SharedMemory creation site in the library) --
    def create(self, nbytes: int):
        if self._closed:
            raise RuntimeError("SegmentRegistry used after close")
        shared_memory = _shared_memory()
        size = max(1, int(nbytes))
        t0 = time.perf_counter_ns() if obs.enabled() else 0
        segment = None
        last_error: BaseException | None = None
        # the pid + random token in _segment_name() make a clash all but
        # impossible, but a leaked segment from a pid-reused predecessor
        # still costs only a retry under a fresh token, never the request
        for _ in range(8):
            try:
                segment = shared_memory.SharedMemory(
                    create=True, name=_segment_name(), size=size
                )
                break
            except FileExistsError as exc:
                last_error = exc
        if segment is None:
            raise ParallelError(
                "could not allocate a unique shared-memory segment name"
                " after 8 attempts"
            ) from last_error
        with _live_lock:
            _live[segment.name] = segment
        self._segments.append(segment)
        if obs.enabled():
            registry = obs.metrics()
            registry.counter("parallel.shm.segments").inc()
            registry.counter("parallel.shm.bytes").inc(segment.size)
            registry.histogram("parallel.shm.create_ns").record(
                time.perf_counter_ns() - t0
            )
        return segment

    def pack(self, arrays) -> list[ShmArray]:
        """Copy *arrays* into one fresh segment; return their descriptors.

        Arrays are laid out back to back at :data:`_ALIGN`-byte offsets.
        Pass ``(shape, dtype)`` tuples instead of arrays to reserve
        zero-initialised writable slots (result buffers workers fill)."""
        t0 = time.perf_counter_ns() if obs.enabled() else 0
        specs = []
        offset = 0
        for item in arrays:
            if isinstance(item, tuple):
                shape, dtype = item
                source = None
            else:
                source = np.ascontiguousarray(item)
                shape, dtype = source.shape, source.dtype
            descr = ShmArray(
                segment="", dtype=np.dtype(dtype).str, shape=tuple(shape), offset=offset
            )
            specs.append((descr, source))
            offset += descr.nbytes
            offset += (-offset) % _ALIGN
        segment = self.create(offset)
        out = []
        for descr, source in specs:
            descr = ShmArray(segment.name, descr.dtype, descr.shape, descr.offset)
            view = _view(segment, descr)
            view[...] = 0 if source is None else source
            out.append(descr)
        if obs.enabled():
            # pack time *includes* the create call above; subtracting the
            # create histogram's contribution is the reader's job — the
            # phases are reported raw so neither is double-fitted
            obs.metrics().histogram("parallel.shm.pack_ns").record(
                time.perf_counter_ns() - t0
            )
        return out

    def read(self, descr: ShmArray) -> np.ndarray:
        """Copy one of this registry's arrays out (e.g. a result slot a
        worker filled).  The copy detaches the caller from the segment's
        lifetime, so the registry can unlink immediately afterwards."""
        for segment in self._segments:
            if segment.name == descr.segment:
                if not obs.enabled():
                    return _view(segment, descr).copy()
                t0 = time.perf_counter_ns()
                out = _view(segment, descr).copy()
                obs.metrics().histogram("parallel.shm.unpack_ns").record(
                    time.perf_counter_ns() - t0
                )
                return out
        raise KeyError(f"segment {descr.segment!r} is not owned by this registry")

    def close(self) -> None:
        """Unlink everything this registry created (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            with _live_lock:
                _live.pop(segment.name, None)
            try:
                segment.close()
            except Exception:
                pass
            try:
                segment.unlink()
            except Exception:
                pass
        self._segments = []

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _view(segment, descr: ShmArray) -> np.ndarray:
    return np.ndarray(
        descr.shape,
        dtype=np.dtype(descr.dtype),
        buffer=segment.buf,
        offset=descr.offset,
    )


# ----------------------------------------------------------------------
# worker side: attach, never create, never unlink
# ----------------------------------------------------------------------
def attach(name: str):
    """Attach to a parent-owned segment, tracker-detached.

    Attaching registers the segment with a ``resource_tracker``; if that
    tracker belongs to *this* process, it would unlink the parent's live
    segment when this process exits (bpo-38119), so the registration is
    removed immediately (Python < 3.13 has no ``track=False``).  A
    **forked** worker instead shares the parent's tracker — there the
    duplicate registration is harmless and must be left alone: removing
    it would strip the parent's own crash backstop and double-unregister
    at unlink time."""
    t0 = time.perf_counter_ns() if obs.enabled() else 0
    shared_memory = _shared_memory()
    try:
        from multiprocessing import resource_tracker

        inherited = (
            _forked_child
            and getattr(resource_tracker._resource_tracker, "_fd", None)
            is not None
        )
    except Exception:  # pragma: no cover - tracker internals shifted
        resource_tracker = None
        inherited = False
    segment = shared_memory.SharedMemory(name=name)
    if resource_tracker is not None and not inherited:
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals shifted
            pass
    if obs.enabled():
        obs.metrics().histogram("parallel.shm.attach_ns").record(
            time.perf_counter_ns() - t0
        )
    return segment


class attached_job:
    """Worker-side view of one request's descriptors.

    ``with attached_job() as job:`` — :meth:`array` maps a descriptor to
    a live numpy view (segments attached once, cached by name); exiting
    closes every attachment (close only — unlink belongs to the parent)."""

    def __init__(self) -> None:
        self._segments: dict = {}

    def array(self, descr: ShmArray) -> np.ndarray:
        segment = self._segments.get(descr.segment)
        if segment is None:
            segment = attach(descr.segment)
            self._segments[descr.segment] = segment
        return _view(segment, descr)

    def __enter__(self) -> "attached_job":
        return self

    def __exit__(self, *exc) -> None:
        for segment in self._segments.values():
            try:
                segment.close()
            except Exception:
                pass
        self._segments = {}
