"""Worker-pool backends for shard fan-out.

Three backends, one contract — results in submission order, first worker
exception re-raised after every started task has settled:

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Threads are the right vehicle here because the shard fold of
  :mod:`repro.parallel.fold` spends its time in batched numpy kernels
  that release the GIL; workers share the evaluator's caches with zero
  serialisation cost.
* ``"process"`` — the supervised worker-process pool of
  :mod:`repro.parallel.procpool`: crash isolation at the cost of
  shipping work as picklable :class:`~repro.parallel.procpool.ProcCall`
  descriptors (bulk arrays travel through :mod:`repro.parallel.shm`).
  A worker death is detected, the worker respawned, and the lost shard
  retried — or surfaced as one typed error.
* ``"serial"`` — the same thunks run inline on the calling thread.  The
  differential anchor (backend equality is asserted bit-for-bit by the
  test suite and by ``benchmarks/bench_parallel.py``) and the
  deterministic fallback for debugging or single-core deployments.

Callers that accept ``"auto"`` (``SpannerDB.query_bulk``, the serve
layer) resolve it via :func:`repro.parallel.api.resolve_backend` before
reaching this module.  Unknown backends raise
:class:`~repro.errors.ParallelError` — a typed, catchable configuration
error, not an assert.

On the first thunk exception the thread path *cancels not-yet-started
futures* (fail-fast): the remaining queued shards of a poisoned batch
never run, while already-running ones settle before the first error —
in submission order — is re-raised.  Cancelled tasks never ran, so the
caller observes either full results or one error, never a torn mix.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, wait as futures_wait

from repro.errors import ParallelError

__all__ = ["BACKENDS", "default_workers", "run_tasks", "usable_cores"]

BACKENDS = ("thread", "process", "serial")

#: cap on the *default* worker count — beyond this, memory bandwidth (not
#: the GIL) is the bottleneck for the fold kernel's batched matmuls;
#: callers who know better pass ``workers`` explicitly
_DEFAULT_WORKER_CAP = 8


def usable_cores() -> int:
    """CPUs this process may actually run on.

    ``os.sched_getaffinity`` respects cgroup/container cpusets and
    ``taskset`` restrictions — inside a 2-core container on a 64-core
    host it answers 2, where ``os.cpu_count()`` answers 64.  Platforms
    without affinity (macOS) fall back to ``os.cpu_count()``."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_workers() -> int:
    return max(1, min(_DEFAULT_WORKER_CAP, usable_cores()))


def run_tasks(thunks, *, workers: int | None = None, backend: str = "thread"):
    """Run *thunks* (zero-argument callables), return results in order.

    ``backend="serial"``, a single worker, or a single task all short-
    circuit to an inline loop — no pool, no threads, deterministic.

    ``backend="process"`` requires every thunk to be a picklable
    :class:`~repro.parallel.procpool.ProcCall` (closures cannot cross a
    process boundary); the batch runs on the shared supervised pool."""
    if backend not in BACKENDS:
        raise ParallelError(
            f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
        )
    if workers is None:
        workers = default_workers()
    workers = int(workers)
    if workers < 1:
        raise ParallelError(f"workers must be >= 1, got {workers}")
    thunks = list(thunks)
    if backend == "process":
        from repro.parallel.procpool import ProcCall, get_pool

        for thunk in thunks:
            if not isinstance(thunk, ProcCall):
                raise ParallelError(
                    "the process backend ships work to other processes, so"
                    " tasks must be picklable ProcCall descriptors, not"
                    f" {type(thunk).__name__}"
                )
        if workers == 1 or len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        return get_pool().run(thunks)
    if backend == "serial" or workers == 1 or len(thunks) <= 1:
        return [thunk() for thunk in thunks]
    with ThreadPoolExecutor(
        max_workers=min(workers, len(thunks)),
        thread_name_prefix="repro-parallel",
    ) as pool:
        futures = [pool.submit(thunk) for thunk in thunks]
        # settle the whole batch first; on the first failure, cancel every
        # future the pool has not started yet — a poisoned batch must not
        # burn the remaining shards' work.  cancel() is best-effort and
        # only succeeds on not-yet-running futures, so started tasks still
        # settle before the pool's shutdown joins the workers.
        done, _ = futures_wait(futures, return_when="FIRST_EXCEPTION")
        if any(not f.cancelled() and f.exception() is not None for f in done):
            for future in futures:
                future.cancel()
        first_error: BaseException | None = None
        results = []
        for future in futures:
            if future.cancelled():
                results.append(None)
                continue
            error = future.exception()
            if error is not None:
                if first_error is None:
                    first_error = error
                results.append(None)
            else:
                results.append(future.result())
        if first_error is not None:
            # the error of the earliest-submitted failing task wins, same
            # as before fail-fast cancellation existed
            raise first_error
        return results
