"""Worker-pool backends for shard fan-out.

Two backends, one contract — results in submission order, first worker
exception re-raised after every task has settled:

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Threads are the right vehicle here because the shard fold of
  :mod:`repro.parallel.fold` spends its time in batched numpy kernels
  that release the GIL; workers share the evaluator's caches with zero
  serialisation cost.
* ``"serial"`` — the same thunks run inline on the calling thread.  The
  differential anchor (thread-vs-serial equality is asserted bit-for-bit
  by the test suite and by ``benchmarks/bench_parallel.py``) and the
  deterministic fallback for debugging or single-core deployments.

Unknown backends raise :class:`~repro.errors.ParallelError` — a typed,
catchable configuration error, not an assert.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ParallelError

__all__ = ["BACKENDS", "default_workers", "run_tasks"]

BACKENDS = ("thread", "serial")

#: cap on the *default* worker count — beyond this, memory bandwidth (not
#: the GIL) is the bottleneck for the fold kernel's batched matmuls;
#: callers who know better pass ``workers`` explicitly
_DEFAULT_WORKER_CAP = 8


def default_workers() -> int:
    return max(1, min(_DEFAULT_WORKER_CAP, os.cpu_count() or 1))


def run_tasks(thunks, *, workers: int | None = None, backend: str = "thread"):
    """Run *thunks* (zero-argument callables), return results in order.

    ``backend="serial"``, a single worker, or a single task all short-
    circuit to an inline loop — no pool, no threads, deterministic."""
    if backend not in BACKENDS:
        raise ParallelError(
            f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
        )
    if workers is None:
        workers = default_workers()
    workers = int(workers)
    if workers < 1:
        raise ParallelError(f"workers must be >= 1, got {workers}")
    thunks = list(thunks)
    if backend == "serial" or workers == 1 or len(thunks) <= 1:
        return [thunk() for thunk in thunks]
    with ThreadPoolExecutor(
        max_workers=min(workers, len(thunks)),
        thread_name_prefix="repro-parallel",
    ) as pool:
        futures = [pool.submit(thunk) for thunk in thunks]
        # the pool's shutdown joins every worker, so a raising .result()
        # never leaves threads touching shared state behind the caller
        return [future.result() for future in futures]
