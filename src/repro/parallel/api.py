"""Shard-parallel evaluation: the public entry points.

Two fan-out shapes, both built on the associative ``(σ, T, T_em)``
algebra of :mod:`repro.parallel.fold`:

* **within one document** — :func:`document_matrices` splits a plain-text
  document into balanced shards, folds each shard on a worker, and folds
  the shard entries on the calling thread.  The result is bit-for-bit the
  entry ``preprocess`` would compute for the same document's SLP;
  :func:`is_nonempty_text` answers non-emptiness from it without
  enumeration.
* **across documents** — :func:`preprocess_bulk` warms one evaluator's
  node matrices for many stored documents concurrently: workers run the
  pure :meth:`~repro.slp.SLPSpannerEvaluator.compute_entries` (reading
  the shared cache, writing nothing), and results merge on the calling
  thread afterwards.  :meth:`SpannerDB.query_bulk <repro.db.SpannerDB.query_bulk>`
  and the batched request type of :mod:`repro.serve` sit on top.

Shard fan-out and fold timings are recorded through :mod:`repro.obs`
(``parallel.document_matrices`` / ``parallel.preprocess_bulk`` spans, and
``parallel.shards`` / ``parallel.fanout_ns`` / ``parallel.fold_ns``
counters) so worker sizing can be tuned from traces instead of guesses —
see ``docs/PERFORMANCE.md`` for the sizing guidance.
"""

from __future__ import annotations

import time

from repro import obs
from repro.parallel.fold import (
    DEFAULT_CHUNK,
    fold_entries,
    shard_spans,
    text_entry,
)
from repro.parallel.pool import default_workers, run_tasks
from repro.slp.spanner_eval import SLPSpannerEvaluator

__all__ = [
    "as_evaluator",
    "document_matrices",
    "is_nonempty_text",
    "preprocess_bulk",
]


def as_evaluator(spanner) -> SLPSpannerEvaluator:
    """Resolve *spanner* to an evaluator.

    Strings go through the process-wide plan cache (one compile +
    determinisation amortised across every call that names the same
    source); evaluators pass through; anything else —
    :class:`~repro.automata.evset.DeterministicEVA`, a vset-automaton, a
    ``RegularSpanner`` — gets a fresh evaluator."""
    if isinstance(spanner, SLPSpannerEvaluator):
        return spanner
    if isinstance(spanner, str):
        from repro.kernels.plan import plan_cache

        return plan_cache().get_or_compile(spanner).evaluator
    return SLPSpannerEvaluator(spanner)


def document_matrices(
    spanner,
    text: str,
    *,
    workers: int | None = None,
    backend: str = "thread",
    shards: int | None = None,
    chunk_size: int = DEFAULT_CHUNK,
    budget=None,
):
    """``(σ, T, T_em)`` of *text* under *spanner*, computed shard-parallel.

    The document is split into *shards* balanced spans (default: one per
    worker); each worker folds its span with the chunked kernel of
    :mod:`repro.parallel.fold`; the per-shard entries fold on the calling
    thread.  The returned entry is **bit-for-bit identical** for every
    ``(backend, workers, shards, chunk_size)`` choice — asserted
    differentially against the SLP ``preprocess`` path by the test suite.

    A shared :class:`~repro.util.Budget` governs all workers: steps are
    charged per combined pair and ``max_bytes`` guards each level's
    transient float32 stacks, so deadlines and memory limits hold across
    the fan-out exactly as they do on the serial path."""
    evaluator = as_evaluator(spanner)
    q = evaluator.det.num_states
    if workers is None:
        workers = default_workers()
    if shards is None:
        shards = workers
    spans = shard_spans(len(text), shards)
    # distinct chars resolve through the store's lock exactly once, here;
    # workers then read a plain dict
    table = evaluator.char_entries(text)
    observing = obs.enabled()
    with obs.tracer().span(
        "parallel.document_matrices",
        chars=len(text),
        shards=len(spans),
        workers=workers,
        backend=backend,
    ):
        t0 = time.perf_counter_ns() if observing else 0
        thunks = [
            lambda start=start, end=end: text_entry(
                table,
                text[start:end],
                q,
                chunk_size=chunk_size,
                budget=budget,
            )
            for start, end in spans
        ]
        shard_entries = run_tasks(thunks, workers=workers, backend=backend)
        t1 = time.perf_counter_ns() if observing else 0
        entry = fold_entries(shard_entries, q, budget)
        if observing:
            registry = obs.metrics()
            registry.counter("parallel.shards").inc(len(spans))
            registry.counter("parallel.fanout_ns").inc(t1 - t0)
            registry.counter("parallel.fold_ns").inc(
                time.perf_counter_ns() - t1
            )
    return entry


def is_nonempty_text(spanner, text: str, **kwargs) -> bool:
    """``⟦M⟧(text) ≠ ∅`` from one shard-parallel fold (no enumeration,
    no SLP).  Keyword arguments are those of :func:`document_matrices`."""
    evaluator = as_evaluator(spanner)
    return evaluator.entry_is_nonempty(
        document_matrices(evaluator, text, **kwargs)
    )


def preprocess_bulk(
    evaluator: SLPSpannerEvaluator,
    slp,
    nodes,
    *,
    workers: int | None = None,
    backend: str = "thread",
    budget=None,
) -> int:
    """Warm *evaluator*'s matrices for several documents concurrently.

    Workers run the pure per-document wave computation
    (:meth:`~repro.slp.SLPSpannerEvaluator.compute_entries`) against the
    shared node cache — reads only — and the results merge on the calling
    thread once every worker has finished, so cache mutation is
    single-threaded by construction.  Documents sharing subtrees may
    compute a shared node's entry redundantly; the merge keeps one copy.
    Returns the number of fresh entries adopted."""
    nodes = list(nodes)
    evaluator.ensure_finalizer(slp)
    with obs.tracer().span(
        "parallel.preprocess_bulk", documents=len(nodes), backend=backend
    ):
        observing = obs.enabled()
        t0 = time.perf_counter_ns() if observing else 0
        thunks = [
            lambda node=node: evaluator.compute_entries(slp, node, budget)
            for node in nodes
        ]
        results = run_tasks(thunks, workers=workers, backend=backend)
        t1 = time.perf_counter_ns() if observing else 0
        fresh = 0
        for fresh_entries, _ in results:
            fresh += evaluator.merge_entries(slp, fresh_entries)
        if observing:
            registry = obs.metrics()
            registry.counter("parallel.fanout_ns").inc(t1 - t0)
            registry.counter("parallel.fold_ns").inc(
                time.perf_counter_ns() - t1
            )
            registry.counter("parallel.bulk_fresh").inc(fresh)
    return fresh
