"""Shard-parallel evaluation: the public entry points.

Two fan-out shapes, both built on the associative ``(σ, T, T_em)``
algebra of :mod:`repro.parallel.fold`:

* **within one document** — :func:`document_matrices` splits a plain-text
  document into balanced shards, folds each shard on a worker, and folds
  the shard entries on the calling thread.  The result is bit-for-bit the
  entry ``preprocess`` would compute for the same document's SLP;
  :func:`is_nonempty_text` answers non-emptiness from it without
  enumeration.
* **across documents** — :func:`preprocess_bulk` warms one evaluator's
  node matrices for many stored documents concurrently: workers run the
  pure :meth:`~repro.slp.SLPSpannerEvaluator.compute_entries` (reading
  the shared cache, writing nothing), and results merge on the calling
  thread afterwards.  :meth:`SpannerDB.query_bulk <repro.db.SpannerDB.query_bulk>`
  and the batched request type of :mod:`repro.serve` sit on top.

Both accept every backend of :mod:`repro.parallel.pool` plus ``"auto"``.
For the ``"process"`` backend the fan-out changes vehicle, not value:
inputs ship through :mod:`repro.parallel.shm` (character-index arrays,
per-character entry stacks, SLP arena snapshots), workers of the
supervised :mod:`repro.parallel.procpool` compute against them, and the
folded entries come back bit-for-bit identical to the serial path — the
worker-side kernels (:func:`~repro.parallel.fold.indexed_entry`, the SLP
wave computation) are the *same code* operating on the same values.

``"auto"`` resolution and graceful degradation live in
:func:`resolve_backend` and the module's process-path circuit breaker: a
:class:`~repro.errors.WorkerCrashError` records a failure and the work
reruns on the thread backend (identical results, no crash isolation);
enough consecutive crashes open the breaker and ``"auto"`` stops
choosing the process backend until it recovers.
:class:`~repro.errors.PoolExhaustedError` degrades only under
``"auto"`` — a caller that asked for ``"process"`` explicitly gets the
typed backpressure signal (:mod:`repro.serve` turns it into
:class:`~repro.errors.OverloadedError`).

Shard fan-out and fold timings are recorded through :mod:`repro.obs`
(``parallel.document_matrices`` / ``parallel.preprocess_bulk`` spans, and
``parallel.shards`` / ``parallel.fanout_ns`` / ``parallel.fold_ns`` /
``parallel.degraded`` counters) so worker sizing can be tuned from
traces instead of guesses — see ``docs/PERFORMANCE.md`` for the sizing
guidance and ``docs/RELIABILITY.md`` for the supervision runbook.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import obs
from repro.errors import PoolExhaustedError, WorkerCrashError
from repro.kernels.bitmat import BitMatrix, words_for
from repro.parallel.fold import (
    DEFAULT_CHUNK,
    fold_entries,
    indexed_entry,
    shard_spans,
    table_stack,
    text_entry,
)
from repro.parallel.pool import default_workers, run_tasks, usable_cores
from repro.parallel.procpool import ProcCall, get_pool
from repro.parallel.shm import SegmentRegistry, attached_job
from repro.slp.spanner_eval import SLPSpannerEvaluator
from repro.util.budget import Budget, Deadline

__all__ = [
    "as_evaluator",
    "document_matrices",
    "is_nonempty_text",
    "preprocess_bulk",
    "process_breaker",
    "resolve_backend",
]

#: below this many characters the pipe/segment round-trip costs more
#: than the fold itself; ``"auto"`` keeps such documents on threads
_PROCESS_MIN_CHARS = 4096

_breaker_lock = threading.Lock()
_breaker = None


def process_breaker():
    """The circuit breaker guarding the process backend (lazily built).

    Worker crashes record failures; enough consecutive ones open it and
    :func:`resolve_backend` answers ``"thread"`` until the half-open
    probe succeeds.  Exposed so tests and the serve layer can inspect or
    reset degradation state."""
    global _breaker
    with _breaker_lock:
        if _breaker is None:
            from repro.serve.breaker import CircuitBreaker

            _breaker = CircuitBreaker(failure_threshold=3, reset_after=5.0)
        return _breaker


def resolve_backend(
    backend: str = "auto",
    *,
    size_hint_chars: int | None = None,
    shippable: bool = True,
) -> str:
    """Resolve ``"auto"`` to a concrete backend; pass others through.

    ``"auto"`` picks ``"process"`` only when it can pay off: at least two
    usable cores (affinity-aware), the work is shippable (e.g. the
    spanner's source text is known, for worker-side compilation), the
    document is large enough to amortise the transport, and the process
    breaker is closed.  Otherwise ``"thread"``."""
    if backend != "auto":
        return backend
    if not shippable:
        return "thread"
    if usable_cores() < 2:
        return "thread"
    if size_hint_chars is not None and size_hint_chars < _PROCESS_MIN_CHARS:
        return "thread"
    breaker = process_breaker()
    if not breaker.allow():
        return "thread"
    # allow() in half-open state reserves a probe slot that must be paired
    # with a success/failure record; the probe is the request itself, and
    # the process path below records the outcome.
    return "process"


def _record_degraded(reason: str) -> None:
    if obs.enabled():
        obs.metrics().counter("parallel.degraded").inc()
        obs.metrics().counter(f"parallel.degraded.{reason}").inc()


def as_evaluator(spanner) -> SLPSpannerEvaluator:
    """Resolve *spanner* to an evaluator.

    Strings go through the process-wide plan cache (one compile +
    determinisation amortised across every call that names the same
    source); evaluators pass through; anything else —
    :class:`~repro.automata.evset.DeterministicEVA`, a vset-automaton, a
    ``RegularSpanner`` — gets a fresh evaluator."""
    if isinstance(spanner, SLPSpannerEvaluator):
        return spanner
    if isinstance(spanner, str):
        from repro.kernels.plan import plan_cache

        return plan_cache().get_or_compile(spanner).evaluator
    return SLPSpannerEvaluator(spanner)


# ----------------------------------------------------------------------
# budget shipping: only the *deadline* crosses the process boundary
# ----------------------------------------------------------------------
def _budget_spec(budget):
    """``(deadline_at, max_steps_left, max_bytes)`` or ``None``.

    The monotonic clock is system-wide on Linux, so a deadline instant is
    meaningful in the worker.  Steps are *not* shared across processes
    the way the thread backend shares one Budget object — each worker
    gets the full remaining allowance, and the parent charges the actual
    worker-reported steps to the caller's budget afterwards, so step
    exhaustion still surfaces (just after the batch, not mid-shard)."""
    if budget is None:
        return None
    deadline_at = budget.deadline.at if budget.deadline is not None else None
    return (deadline_at, budget.remaining_steps(), budget.max_bytes)


def _budget_from_spec(spec):
    if spec is None:
        return None
    deadline_at, max_steps, max_bytes = spec
    return Budget(
        deadline=Deadline(deadline_at) if deadline_at is not None else None,
        max_steps=max_steps,
        max_bytes=max_bytes,
    )


def _charge_worker_steps(budget, steps: int) -> None:
    if budget is not None and steps:
        budget.step(steps)


# ----------------------------------------------------------------------
# within one document
# ----------------------------------------------------------------------
def document_matrices(
    spanner,
    text: str,
    *,
    workers: int | None = None,
    backend: str = "thread",
    shards: int | None = None,
    chunk_size: int = DEFAULT_CHUNK,
    budget=None,
):
    """``(σ, T, T_em)`` of *text* under *spanner*, computed shard-parallel.

    The document is split into *shards* balanced spans (default: one per
    worker); each worker folds its span with the chunked kernel of
    :mod:`repro.parallel.fold`; the per-shard entries fold on the calling
    thread.  The returned entry is **bit-for-bit identical** for every
    ``(backend, workers, shards, chunk_size)`` choice — asserted
    differentially against the SLP ``preprocess`` path by the test suite.

    A shared :class:`~repro.util.Budget` governs all workers: steps are
    charged per combined pair and ``max_bytes`` guards each level's
    transient float32 stacks, so deadlines and memory limits hold across
    the fan-out exactly as they do on the serial path.  (On the process
    backend the deadline ships to the workers and steps are charged when
    their counts return — see :func:`_budget_spec`.)"""
    evaluator = as_evaluator(spanner)
    q = evaluator.det.num_states
    if workers is None:
        workers = default_workers()
    if shards is None:
        shards = workers
    requested = backend
    backend = resolve_backend(backend, size_hint_chars=len(text))
    spans = shard_spans(len(text), shards)
    # distinct chars resolve through the store's lock exactly once, here;
    # workers then read a plain dict
    table = evaluator.char_entries(text)
    observing = obs.enabled()
    with obs.tracer().span(
        "parallel.document_matrices",
        chars=len(text),
        shards=len(spans),
        workers=workers,
        backend=backend,
    ):
        t0 = time.perf_counter_ns() if observing else 0
        if backend == "process":
            try:
                shard_entries = _fold_shards_process(
                    table, text, q, spans, chunk_size, budget
                )
            except WorkerCrashError:
                # crash isolation did its job: the workers died, we did
                # not.  Record the failure and rerun on threads — the
                # values are identical, only the isolation is lost.
                if requested == "auto":
                    process_breaker().record_failure()
                _record_degraded("crash")
                backend = "thread"
            except PoolExhaustedError:
                # backpressure, not ill health: the breaker's probe (if
                # any) is released as a success so ``"auto"`` can keep
                # probing, and explicit callers get the typed signal
                if requested == "auto":
                    process_breaker().record_success()
                    _record_degraded("exhausted")
                    backend = "thread"
                else:
                    raise
            except BaseException:
                # a typed task error (deadline, step budget, …): the pool
                # itself behaved, so the probe settles as a success
                if requested == "auto":
                    process_breaker().record_success()
                raise
            else:
                if requested == "auto":
                    process_breaker().record_success()
        if backend != "process":
            thunks = [
                lambda start=start, end=end: text_entry(
                    table,
                    text[start:end],
                    q,
                    chunk_size=chunk_size,
                    budget=budget,
                )
                for start, end in spans
            ]
            shard_entries = run_tasks(thunks, workers=workers, backend=backend)
        t1 = time.perf_counter_ns() if observing else 0
        entry = fold_entries(shard_entries, q, budget)
        if observing:
            registry = obs.metrics()
            registry.counter("parallel.shards").inc(len(spans))
            registry.counter("parallel.fanout_ns").inc(t1 - t0)
            registry.counter("parallel.fold_ns").inc(
                time.perf_counter_ns() - t1
            )
            # the counters above aggregate totals; the histograms keep the
            # per-request distribution the ROADMAP's segment-pool decision
            # needs (is fanout dominated by a few slow requests or many?)
            registry.histogram("parallel.phase.fanout_ns").record(t1 - t0)
            registry.histogram("parallel.phase.fold_ns").record(
                time.perf_counter_ns() - t1
            )
    return entry


def _fold_shards_process(table, text: str, q: int, spans, chunk_size, budget):
    """Fan the shard folds out to worker processes via shared memory.

    One segment carries the per-position table-row indices, the distinct-
    character entry stacks, and zero-initialised per-shard result slots;
    workers write their folded entry into their slot and return only
    their step count through the pipe.  The registry unlinks the segment
    on every exit path."""
    if not spans:
        return []
    codes = np.frombuffer(text.encode("utf-32-le"), dtype=np.uint32)
    distinct, inverse = np.unique(codes, return_inverse=True)
    stack = table_stack(table, [chr(code) for code in distinct])
    w = words_for(q)
    n_shards = len(spans)
    spec = _budget_spec(budget)
    with SegmentRegistry() as registry:
        (
            d_inverse,
            d_sigma,
            d_t,
            d_tem,
            d_out_sigma,
            d_out_t,
            d_out_tem,
        ) = registry.pack(
            [
                inverse.astype(np.int64, copy=False),
                stack[0],
                stack[1],
                stack[2],
                ((n_shards, q), np.int64),
                ((n_shards, q, w), np.uint64),
                ((n_shards, q, w), np.uint64),
            ]
        )
        trace_ctx = obs.child_context()
        calls = [
            ProcCall(
                "repro.parallel.api:_fold_shard_task",
                (
                    d_inverse,
                    (d_sigma, d_t, d_tem),
                    (d_out_sigma, d_out_t, d_out_tem),
                    index,
                    start,
                    end,
                    q,
                    chunk_size,
                    spec,
                ),
                trace=trace_ctx,
            )
            for index, (start, end) in enumerate(spans)
        ]
        deadline = budget.deadline if budget is not None else None
        step_counts = get_pool().run(calls, deadline=deadline)
        out_sigma = registry.read(d_out_sigma)
        out_t = registry.read(d_out_t)
        out_tem = registry.read(d_out_tem)
    _charge_worker_steps(budget, sum(step_counts))
    return [
        (
            out_sigma[index],
            BitMatrix(np.ascontiguousarray(out_t[index]), q),
            BitMatrix(np.ascontiguousarray(out_tem[index]), q),
        )
        for index in range(n_shards)
    ]


def _fold_shard_task(
    d_inverse,
    stack_descrs,
    out_descrs,
    shard_index: int,
    start: int,
    end: int,
    q: int,
    chunk_size: int,
    budget_spec,
) -> int:
    """Worker side of :func:`_fold_shards_process`: fold ``[start, end)``
    and write the entry into result slot *shard_index*.  Returns the
    steps charged, for the parent to account."""
    budget = _budget_from_spec(budget_spec)
    with attached_job() as job:
        inverse = job.array(d_inverse)[start:end]
        stack = tuple(job.array(descr) for descr in stack_descrs)
        sigma, t, t_em = indexed_entry(
            stack, inverse, q, chunk_size=chunk_size, budget=budget
        )
        d_out_sigma, d_out_t, d_out_tem = out_descrs
        job.array(d_out_sigma)[shard_index] = sigma
        job.array(d_out_t)[shard_index] = t.rows
        job.array(d_out_tem)[shard_index] = t_em.rows
    return budget.steps if budget is not None else 0


def is_nonempty_text(spanner, text: str, **kwargs) -> bool:
    """``⟦M⟧(text) ≠ ∅`` from one shard-parallel fold (no enumeration,
    no SLP).  Keyword arguments are those of :func:`document_matrices`."""
    evaluator = as_evaluator(spanner)
    return evaluator.entry_is_nonempty(
        document_matrices(evaluator, text, **kwargs)
    )


# ----------------------------------------------------------------------
# across documents
# ----------------------------------------------------------------------
def preprocess_bulk(
    evaluator: SLPSpannerEvaluator,
    slp,
    nodes,
    *,
    workers: int | None = None,
    backend: str = "thread",
    budget=None,
    source: str | None = None,
) -> int:
    """Warm *evaluator*'s matrices for several documents concurrently.

    Thread/serial workers run the pure per-document wave computation
    (:meth:`~repro.slp.SLPSpannerEvaluator.compute_entries`) against the
    shared node cache — reads only — and the results merge on the calling
    thread once every worker has finished, so cache mutation is
    single-threaded by construction.  Documents sharing subtrees may
    compute a shared node's entry redundantly; the merge keeps one copy.

    The process backend additionally needs *source* — the spanner's
    regex text — because workers rebuild their own evaluator from it via
    their local plan cache (determinisation is deterministic, so the
    worker's matrices are bit-identical); the arena ships once as a
    digest-keyed snapshot through shared memory.  Without a source,
    ``"process"``/``"auto"`` quietly degrade to ``"thread"``.

    Returns the number of fresh entries adopted."""
    nodes = list(nodes)
    evaluator.ensure_finalizer(slp)
    requested = backend
    backend = resolve_backend(
        backend, shippable=source is not None and len(nodes) > 1
    )
    if backend == "process" and source is None:
        _record_degraded("unshippable")
        backend = "thread"
    with obs.tracer().span(
        "parallel.preprocess_bulk", documents=len(nodes), backend=backend
    ):
        observing = obs.enabled()
        t0 = time.perf_counter_ns() if observing else 0
        results = None
        if backend == "process":
            try:
                results = _preprocess_bulk_process(
                    evaluator, source, slp, nodes, budget
                )
            except WorkerCrashError:
                if requested == "auto":
                    process_breaker().record_failure()
                _record_degraded("crash")
                backend = "thread"
            except PoolExhaustedError:
                if requested == "auto":
                    process_breaker().record_success()
                    _record_degraded("exhausted")
                    backend = "thread"
                else:
                    raise
            except BaseException:
                if requested == "auto":
                    process_breaker().record_success()
                raise
            else:
                if requested == "auto":
                    process_breaker().record_success()
        if results is None:
            thunks = [
                lambda node=node: evaluator.compute_entries(slp, node, budget)
                for node in nodes
            ]
            results = run_tasks(thunks, workers=workers, backend=backend)
        t1 = time.perf_counter_ns() if observing else 0
        fresh = 0
        for fresh_entries, _ in results:
            fresh += evaluator.merge_entries(slp, fresh_entries)
        # seal each document root so repeat queries — and the discovery
        # walks of any later documents sharing these subtrees — skip them
        for node in nodes:
            evaluator.seal_subtree(slp, node)
        if observing:
            registry = obs.metrics()
            registry.counter("parallel.fanout_ns").inc(t1 - t0)
            registry.counter("parallel.fold_ns").inc(
                time.perf_counter_ns() - t1
            )
            registry.counter("parallel.bulk_fresh").inc(fresh)
            registry.histogram("parallel.phase.fanout_ns").record(t1 - t0)
            registry.histogram("parallel.phase.fold_ns").record(
                time.perf_counter_ns() - t1
            )
    return fresh


def _preprocess_bulk_process(evaluator, source: str, slp, nodes, budget):
    """Fan per-document wave computations out to worker processes.

    Ships the arena once (three flat arrays in one segment, keyed by
    content digest so workers can cache the rebuilt SLP across requests),
    the *parent evaluator's* cached node ids (so workers know which
    entries this caller actually lacks — long-lived workers keep warm
    caches of their own, and worker-side freshness says nothing about
    parent-side freshness), and one :class:`ProcCall` per document node.
    Workers return every requested entry keyed by plain node id — node
    ids survive the round-trip verbatim because
    :meth:`~repro.slp.SLP.from_arena` preserves them — and the parent
    re-keys to its own arena serial for the merge."""
    snapshot = slp.arena_snapshot()
    spec = _budget_spec(budget)
    have = np.array(sorted(evaluator.cached_node_ids(slp)), dtype=np.int64)
    with SegmentRegistry() as registry:
        d_chars, d_left, d_right, d_have = registry.pack(
            [snapshot["chars"], snapshot["left"], snapshot["right"], have]
        )
        trace_ctx = obs.child_context()
        calls = [
            ProcCall(
                "repro.parallel.api:_preprocess_doc_task",
                (
                    source,
                    snapshot["digest"],
                    (d_chars, d_left, d_right),
                    d_have,
                    int(node),
                    spec,
                ),
                trace=trace_ctx,
            )
            for node in nodes
        ]
        deadline = budget.deadline if budget is not None else None
        raw = get_pool().run(calls, deadline=deadline)
    serial = slp.serial
    results = []
    total_steps = 0
    for entries, visited, steps in raw:
        total_steps += steps
        rekeyed = {
            (serial, node): (
                sigma,
                BitMatrix(t_rows, len(sigma)),
                BitMatrix(t_em_rows, len(sigma)),
            )
            for node, (sigma, t_rows, t_em_rows) in entries.items()
        }
        results.append((rekeyed, visited))
    _charge_worker_steps(budget, total_steps)
    return results


#: worker-side cache of rebuilt arenas, keyed by content digest; bounded
#: — old entries drop (and their evaluator matrices purge via the arena
#: finalizer) once enough different snapshots have been seen
_ARENA_CACHE: dict[str, object] = {}
_ARENA_CACHE_LIMIT = 4


def _worker_arena(digest: str, arena_descrs):
    slp = _ARENA_CACHE.get(digest)
    if slp is None:
        from repro.slp.slp import SLP

        with attached_job() as job:
            d_chars, d_left, d_right = arena_descrs
            # from_arena copies into Python lists, so nothing outlives
            # the attachment
            slp = SLP.from_arena(
                job.array(d_chars), job.array(d_left), job.array(d_right)
            )
        while len(_ARENA_CACHE) >= _ARENA_CACHE_LIMIT:
            _ARENA_CACHE.pop(next(iter(_ARENA_CACHE)))
        _ARENA_CACHE[digest] = slp
    return slp


def _preprocess_doc_task(
    source: str, digest: str, arena_descrs, d_have, node: int, budget_spec
):
    """Worker side of :func:`_preprocess_bulk_process`: ensure entries for
    every node reachable from *node* exist in the worker's own evaluator
    (compiled from *source* through the worker's plan cache —
    deterministic, hence bit-identical matrices) and ship every entry the
    *parent* lacks, keyed by plain node id.

    Shipping is keyed off the parent's cached-node set (*d_have*), not
    worker-side freshness: a long-lived worker whose digest-keyed arena
    and plan-cache evaluator already hold these entries computes nothing
    fresh, and shipping only fresh entries would leave a colder parent —
    a second evaluator over the same source, or a re-registration after
    rollback to identical arena content — silently unwarmed."""
    from repro.kernels.plan import plan_cache

    slp = _worker_arena(digest, arena_descrs)
    evaluator = plan_cache().get_or_compile(source).evaluator
    budget = _budget_from_spec(budget_spec)
    fresh_entries, visited = evaluator.compute_entries(slp, node, budget)
    # warm the worker's own cache too: later documents in this batch that
    # share subtrees then skip recomputation, like the thread path does —
    # and seal, so repeat requests against a warm worker walk nothing
    evaluator.merge_entries(slp, fresh_entries)
    evaluator.seal_subtree(slp, node)
    with attached_job() as job:
        parent_has = set(job.array(d_have).tolist())
    # the parent's cached set is closed under descendants (insertions are
    # bottom-up closures, invalidation is an id suffix), so the shipping
    # walk can stop at any node the parent already has instead of walking
    # the whole subtree and filtering
    shipped = {}
    to_ship, _skipped = slp.frontier(node, parent_has)
    for node_id in to_ship:
        sigma, t, t_em = evaluator.node_entry(slp, node_id)
        shipped[node_id] = (sigma, t.rows, t_em.rows)
    return shipped, visited, (budget.steps if budget is not None else 0)
