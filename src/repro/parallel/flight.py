"""The crash flight recorder: a worker's last words, readable post-mortem.

A SIGKILLed pool worker (chaos, OOM, stall-kill, deadline-kill) can never
ship its telemetry: the pipes die with it, and PR 6's supervisor could
only report *that* a worker died, never *what it was doing*.  This module
closes that gap with a tiny parent-owned shared-memory ring per worker:
the worker mirrors every trace record it emits into the ring (via
``Tracer.record_hook``), and when the supervisor declares the worker
crashed it *salvages* the ring — the records survive because the segment
belongs to the parent, not the victim.

Ring layout (one segment per worker per :meth:`ProcPool.run`)::

    header:  <IIII  = magic, slot_count, slot_size, writes
    slots:   slot_count × (<I length-prefix + slot_size payload bytes)

The worker writes slot ``writes % slot_count`` (payload first, then the
length prefix, then the header's ``writes`` counter), so the parent reads
the last ``min(writes, slot_count)`` records in chronological order.
There is no locking: the worker is the only writer, the parent only reads
after the worker is dead (or while it is stopped mid-SIGKILL — a torn
record fails JSON parsing and is skipped, never misread).

Records longer than a slot are retried without their ``attrs`` payload
and dropped if still oversized — the recorder prefers losing detail to
losing the timeline.  Segment creation goes through the caller's
:class:`~repro.parallel.shm.SegmentRegistry` (the library's single
creation site), so rings obey the same leak-proofing contract as shard
payload segments: unlinked when the run's registry closes, crash or not.
"""

from __future__ import annotations

import json
import struct

from repro.parallel import shm

__all__ = ["DEFAULT_SLOTS", "DEFAULT_SLOT_SIZE", "FlightWriter", "create_ring", "salvage"]

_MAGIC = 0x464C5452  # "FLTR"
_HEADER = struct.Struct("<IIII")  # magic, slot_count, slot_size, writes
_LENGTH = struct.Struct("<I")

DEFAULT_SLOTS = 32
DEFAULT_SLOT_SIZE = 512


def ring_nbytes(slots: int, slot_size: int) -> int:
    return _HEADER.size + slots * (_LENGTH.size + slot_size)


def create_ring(
    registry: "shm.SegmentRegistry",
    slots: int = DEFAULT_SLOTS,
    slot_size: int = DEFAULT_SLOT_SIZE,
):
    """A fresh parent-owned ring segment (header initialised, zero writes).

    The segment lives and dies with *registry*; the caller ships
    ``segment.name`` to the worker inside the dispatch spec."""
    segment = registry.create(ring_nbytes(slots, slot_size))
    _HEADER.pack_into(segment.buf, 0, _MAGIC, slots, slot_size, 0)
    return segment


class FlightWriter:
    """Worker-side writer for one ring (the ``record_hook`` target).

    Attaches to the parent's segment by name; :meth:`write` serialises a
    trace record into the next slot.  Close-only on :meth:`close` —
    unlinking is the parent registry's job."""

    __slots__ = ("name", "_segment", "_slots", "_slot_size", "_writes")

    def __init__(self, name: str) -> None:
        self.name = name
        self._segment = shm.attach(name)
        magic, self._slots, self._slot_size, self._writes = _HEADER.unpack_from(
            self._segment.buf, 0
        )
        if magic != _MAGIC:
            raise ValueError(f"segment {name!r} is not a flight ring")

    def write(self, record: dict) -> None:
        try:
            payload = json.dumps(record, default=str).encode("utf-8")
            if len(payload) > self._slot_size:
                slim = {k: v for k, v in record.items() if k != "attrs"}
                payload = json.dumps(slim, default=str).encode("utf-8")
                if len(payload) > self._slot_size:
                    return
            slot = self._writes % self._slots
            offset = _HEADER.size + slot * (_LENGTH.size + self._slot_size)
            buf = self._segment.buf
            buf[
                offset + _LENGTH.size : offset + _LENGTH.size + len(payload)
            ] = payload
            _LENGTH.pack_into(buf, offset, len(payload))
            self._writes += 1
            _HEADER.pack_into(
                buf, 0, _MAGIC, self._slots, self._slot_size, self._writes
            )
        except Exception:  # the recorder must never break the traced path
            pass

    def close(self) -> None:
        try:
            self._segment.close()
        except Exception:  # pragma: no cover
            pass


def salvage(segment) -> list[dict]:
    """Read a (dead) worker's ring from the parent-owned *segment*.

    Returns the last ``min(writes, slot_count)`` records oldest-first;
    torn or truncated slots (the worker died mid-write) are skipped."""
    try:
        magic, slots, slot_size, writes = _HEADER.unpack_from(segment.buf, 0)
    except Exception:
        return []
    if magic != _MAGIC or slots == 0:
        return []
    count = min(writes, slots)
    records: list[dict] = []
    for sequence in range(writes - count, writes):
        slot = sequence % slots
        offset = _HEADER.size + slot * (_LENGTH.size + slot_size)
        try:
            (length,) = _LENGTH.unpack_from(segment.buf, offset)
            if not 0 < length <= slot_size:
                continue
            payload = bytes(
                segment.buf[offset + _LENGTH.size : offset + _LENGTH.size + length]
            )
            record = json.loads(payload.decode("utf-8"))
        except Exception:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records
