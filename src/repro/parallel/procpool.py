"""A supervised process pool: crash-isolated shard evaluation.

The thread backend of :mod:`repro.parallel.pool` shares one address
space with the caller — cheap, but a worker that segfaults, gets
OOM-killed, or wedges in native code takes the whole service with it.
This module provides the ``"process"`` backend: a small, supervised pool
of worker *processes* to which shard work is shipped as picklable task
descriptors (:class:`ProcCall`), with bulk array payloads travelling
through :mod:`repro.parallel.shm` rather than pipes.

Supervision contract (what :class:`ProcPool.run` guarantees):

* **results in submission order, first error re-raised after the batch
  settles** — the same contract as :func:`repro.parallel.pool.run_tasks`,
  so the backends are drop-in interchangeable;
* **crash containment** — a worker dying mid-task (SIGKILL, OOM, hard
  exit) is detected via its process sentinel, the worker is respawned,
  and *only the lost task* is re-dispatched, with a fresh chaos sequence
  number; a bounded crash/retry budget converts persistent crash loops
  into one typed :class:`~repro.errors.WorkerCrashError` instead of a
  hang;
* **stall containment** — a worker that stops answering for longer than
  ``stall_timeout`` while holding a task is SIGKILLed and treated as a
  crash (the heartbeat is implicit: any task result is progress, and the
  supervisor wakes on ``connection.wait`` timeouts to check);
* **deadline propagation** — the caller's :class:`~repro.util.Deadline`
  bounds the whole batch; on expiry every checked-out busy worker is
  killed (it may be past listening) and
  :class:`~repro.errors.DeadlineExceededError` is raised;
* **admission control** — workers are *checked out* exclusively per
  request; when none are idle, :class:`~repro.errors.PoolExhaustedError`
  (with a ``retry_after`` hint) is raised instead of queueing unboundedly
  — :mod:`repro.serve` converts it into an
  :class:`~repro.errors.OverloadedError`.

Worker processes run :func:`_worker_main`: a recv/execute/send loop over
a dedicated duplex pipe.  One pipe per worker (never a shared queue) is
a deliberate choice: a SIGKILLed worker cannot die holding a shared
queue's internal lock, and ``multiprocessing.connection.wait`` over the
pipes *and* the process sentinels gives the supervisor a single blocking
point that wakes on results and deaths alike.

Fault injection plugs in via :class:`repro.util.faults.WorkerChaos`: the
pool ships the (picklable, seeded) schedule to every worker, each task
dispatch carries a global sequence number, and the worker consults the
schedule *before* executing — so chaos runs kill and stall real
processes deterministically per seed.

The default start method is ``"fork"`` where available (milliseconds per
worker; workers inherit warm imports) and ``"spawn"`` elsewhere;
:func:`configure_pool` overrides it.  Everything here is
observability-instrumented: ``parallel.proc.*`` counters count spawns,
respawns, crashes, retries, and tasks, and each batch runs under a
``parallel.proc.run`` trace span.
"""

from __future__ import annotations

import atexit
import importlib
import itertools
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mpconn

from repro import obs
from repro.errors import (
    DeadlineExceededError,
    ParallelError,
    PoolExhaustedError,
    WorkerCrashError,
)
from repro.util.budget import Deadline

__all__ = [
    "ProcCall",
    "ProcPool",
    "configure_pool",
    "get_pool",
    "pool_stats",
    "shutdown_pool",
]

#: how long (seconds) a dispatched task may go unanswered before the
#: supervisor declares the worker stalled and SIGKILLs it; generous by
#: default — shard folds answer in milliseconds, and chaos tests shrink it
_DEFAULT_STALL_TIMEOUT = 30.0

#: crashes tolerated within one `run` call before giving up with
#: :class:`WorkerCrashError`; respawns across a pool's lifetime are
#: unbounded (each crash inside a run draws from this per-run budget)
_DEFAULT_CRASH_TOLERANCE = 4

#: how many times one task may be re-dispatched after losing its worker
_DEFAULT_TASK_RETRIES = 2


# ----------------------------------------------------------------------
# task descriptors
# ----------------------------------------------------------------------
_FN_CACHE: dict[str, object] = {}


def _resolve(path: str):
    """``"package.module:function"`` → the function, cached per process."""
    fn = _FN_CACHE.get(path)
    if fn is None:
        module_name, _, attr = path.partition(":")
        if not module_name or not attr:
            raise ParallelError(f"malformed task path {path!r}")
        fn = getattr(importlib.import_module(module_name), attr)
        _FN_CACHE[path] = fn
    return fn


@dataclass(frozen=True)
class ProcCall:
    """A picklable unit of work: ``module:function`` plus arguments.

    Closures cannot cross a process boundary, so the process backend
    ships *names*: the worker resolves ``fn`` by import (cached) and
    applies it.  Instances are also directly callable, so any ProcCall
    can be executed inline — the degradation paths rely on that to rerun
    the identical work on the thread or serial backend.

    ``trace`` optionally carries the request's
    :class:`~repro.obs.context.TraceContext` (see ``obs.child_context``):
    the worker activates it for the task's duration so its spans stitch
    under the dispatching span.  It is ignored by ``__call__`` — inline
    re-execution on the thread backend already runs inside the caller's
    context.
    """

    fn: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    trace: object = None

    def __call__(self):
        return _resolve(self.fn)(*self.args, **self.kwargs)


# built-in tasks (supervisor tests and smoke lanes)
def _task_echo(value):
    return value


def _task_pid():
    return os.getpid()


def _task_sleep_ms(milliseconds, value=None):
    time.sleep(milliseconds / 1000.0)
    return value


def _task_raise(message="injected task error", kind="parallel"):
    if kind == "parallel":
        raise ParallelError(message)
    raise RuntimeError(message)


def _task_exit(code=1):  # a *clean* hard exit, distinct from SIGKILL
    os._exit(code)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: worker-process obs state: the harvest baseline tracker plus the cached
#: flight-ring writer (swapped when a dispatch spec names a new ring)
_worker_obs = {"harvest": None, "flight": None}


def _apply_obs_spec(spec: dict | None) -> None:
    """Configure this worker's obs layer from a dispatch spec.

    The spec rides on every task message, so workers converge to the
    parent's current obs state on their next task — including after an
    ``obs.configure`` flip mid-pool-lifetime.  ``None`` means the parent
    has observability off: disable and drop the flight hook."""
    tracer = obs.tracer()
    if spec is None:
        if obs.enabled():
            obs.configure(enabled=False)
        tracer.record_hook = None
        writer = _worker_obs["flight"]
        if writer is not None:
            writer.close()
            _worker_obs["flight"] = None
        return
    tracer.process = f"w{spec['worker']}"
    tracer.set_epoch(spec["epoch"])
    tracer.keep_recent()
    sink = spec.get("sink")
    if sink is not None:
        per_worker = f"{sink}.w{os.getpid()}.jsonl"
        if tracer.sink_path != per_worker:
            tracer.set_sink(per_worker)
    elif tracer.sink_path is not None:
        tracer.set_sink(None)
    if _worker_obs["harvest"] is None:
        from repro.obs.harvest import HarvestState

        _worker_obs["harvest"] = HarvestState()
    ring_name = spec.get("flight")
    writer = _worker_obs["flight"]
    if writer is not None and (ring_name is None or writer.name != ring_name):
        writer.close()
        writer = _worker_obs["flight"] = None
    if ring_name is not None and writer is None:
        from repro.parallel.flight import FlightWriter

        try:
            writer = _worker_obs["flight"] = FlightWriter(ring_name)
        except Exception:  # ring unavailable; fly without the recorder
            writer = None
    tracer.record_hook = writer.write if writer is not None else None
    if not obs.enabled():
        obs.configure(enabled=True)


def _collect_harvest(worker_id: int) -> dict | None:
    """This worker's telemetry since the last harvest (or ``None``).

    Spans ride along only when the worker has no file sink of its own —
    with a per-worker JSONL sink the records are already on disk and the
    parent's re-ingest would duplicate them at stitch time."""
    if not obs.enabled():
        return None
    tracer = obs.tracer()
    if tracer._sink_file is not None:
        try:  # once per task, so the parent can stitch without waiting
            tracer._sink_file.flush()
        except Exception:  # pragma: no cover - sink gone; keep serving
            pass
    delta = _worker_obs["harvest"].collect(obs.metrics())
    spans = tracer.drain_recent() if tracer.sink_path is None else []
    if delta is None and not spans:
        return None
    return {"worker": worker_id, "pid": os.getpid(), "metrics": delta, "spans": spans}


def _shippable_error(exc: BaseException):
    """An exception object safe to send through the result pipe.

    Library errors round-trip through pickle almost always; the guard
    catches custom ``__init__`` signatures (and unpicklable payloads) by
    re-wrapping as a :class:`ParallelError` carrying type and message —
    typed for the caller either way."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ParallelError(f"worker task failed: {type(exc).__name__}: {exc}")


def _worker_main(conn, worker_id: int, chaos) -> None:
    """The worker loop: receive a task, (maybe) suffer chaos, execute,
    reply.  Runs until an ``("exit",)`` message or a closed pipe.

    Each task message carries an obs *spec* (or ``None``): the worker
    mirrors the parent's observability state, activates the call's
    :class:`~repro.obs.context.TraceContext`, records a ``proc.task.recv``
    event *before* consulting chaos (so a SIGKILL victim leaves evidence
    in its flight ring), and piggybacks a telemetry harvest on the reply."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "exit":
            break
        _, seq, call, spec = message
        _apply_obs_spec(spec)
        tracer = obs.tracer()
        previous_ctx = tracer.activate_context(getattr(call, "trace", None))
        if obs.enabled():
            tracer.event("proc.task.recv", seq=seq, fn=call.fn)
        if chaos is not None:
            chaos.apply(seq)
        try:
            with tracer.span("proc.task", seq=seq, fn=call.fn):
                payload = ("ok", seq, call())
        except BaseException as exc:  # ship it; the parent re-raises
            payload = ("err", seq, _shippable_error(exc))
        tracer.activate_context(previous_ctx)
        harvest = _collect_harvest(worker_id)
        try:
            conn.send(payload + (harvest,))
        except Exception:
            try:
                conn.send(
                    ("err", seq, ParallelError("worker result was unpicklable"), None)
                )
            except Exception:  # pragma: no cover - pipe gone; die quietly
                break
    try:
        conn.close()
    except Exception:  # pragma: no cover
        pass


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side handle: process + dedicated duplex pipe + bookkeeping."""

    __slots__ = ("process", "conn", "worker_id", "busy_seq", "dispatched_at")

    def __init__(self, process, conn, worker_id: int) -> None:
        self.process = process
        self.conn = conn
        self.worker_id = worker_id
        self.busy_seq: int | None = None  # task seq in flight, if any
        self.dispatched_at = 0.0

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.process.kill()
        except Exception:  # pragma: no cover - already gone
            pass
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except Exception:  # pragma: no cover
            pass


class ProcPool:
    """A fixed-size supervised pool of worker processes.

    Workers are spawned lazily on first use and owned exclusively by one
    :meth:`run` call at a time (the checkout model): concurrent callers
    split the idle set, and a caller finding no idle worker gets
    :class:`~repro.errors.PoolExhaustedError` immediately — backpressure
    belongs to the layer above, not to a hidden queue.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        start_method: str | None = None,
        chaos=None,
        stall_timeout: float = _DEFAULT_STALL_TIMEOUT,
        crash_tolerance: int = _DEFAULT_CRASH_TOLERANCE,
        task_retries: int = _DEFAULT_TASK_RETRIES,
    ) -> None:
        from repro.parallel.pool import default_workers

        self.workers = int(workers) if workers is not None else default_workers()
        if self.workers < 1:
            raise ParallelError(f"workers must be >= 1, got {self.workers}")
        self.start_method = start_method or _default_start_method()
        self.chaos = chaos
        self.stall_timeout = float(stall_timeout)
        self.crash_tolerance = int(crash_tolerance)
        self.task_retries = int(task_retries)
        self._ctx = None
        self._lock = threading.Lock()
        self._idle: list[_Worker] = []
        self._busy = 0  # workers currently checked out by run() calls
        self._spawned_total = 0
        self._closed = False
        self._task_seq = itertools.count()
        self._stats = {
            "spawned": 0,
            "respawned": 0,
            "crashes": 0,
            # crashes by cause; "crashes"/"stalls" above stay as the
            # legacy aggregates (deadline kills count only under their
            # typed key — the run raises DeadlineExceededError itself)
            "crash_sigkill": 0,
            "crash_stall": 0,
            "crash_deadline": 0,
            "crash_dead_at_dispatch": 0,
            "stalls": 0,
            "retries": 0,
            "tasks": 0,
            "runs": 0,
            "exhausted": 0,
            "harvests": 0,
        }
        # EWMA of run durations feeds PoolExhaustedError.retry_after
        self._mean_run_seconds = 0.05

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _context(self):
        if self._ctx is None:
            import multiprocessing

            self._ctx = multiprocessing.get_context(self.start_method)
        return self._ctx

    def _spawn(self) -> _Worker:
        ctx = self._context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        with self._lock:
            self._spawned_total += 1
            worker_id = self._spawned_total
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id, self.chaos),
            name=f"repro-procpool-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent end alone keeps the pipe open
        self._bump("spawned")
        if obs.enabled():
            obs.metrics().counter("parallel.proc.spawned").inc()
        return _Worker(process, parent_conn, worker_id)

    def _checkout(self, want: int) -> list[_Worker]:
        """Claim up to *want* workers exclusively (spawning up to the pool
        size); zero idle capacity raises :class:`PoolExhaustedError`."""
        want = max(0, want)
        with self._lock:
            if self._closed:
                raise ParallelError("process pool is shut down")
            # idle deaths (e.g. chaos killed a worker between runs) free
            # capacity rather than shrinking the pool permanently
            self._idle = [w for w in self._idle if w.alive()]
            checked_out = self._idle[:want]
            del self._idle[:want]
            headroom = (
                self.workers - self._busy - len(self._idle) - len(checked_out)
            )
            to_spawn = min(max(0, want - len(checked_out)), max(0, headroom))
            self._busy += len(checked_out) + to_spawn
        claimed = len(checked_out)
        try:
            for _ in range(to_spawn):
                checked_out.append(self._spawn())
        except Exception as exc:
            # a failed fork/spawn must not strand the claim: release the
            # reservation held for workers never spawned, then check the
            # already-claimed (and successfully spawned) ones back in so
            # pool capacity survives the failure intact
            with self._lock:
                self._busy -= to_spawn - (len(checked_out) - claimed)
            self._checkin(checked_out)
            raise ParallelError(
                f"failed to spawn a process-pool worker: {exc}"
            ) from exc
        if not checked_out:
            retry_after = self._mean_run_seconds
            self._bump("exhausted")
            if obs.enabled():
                obs.metrics().counter("parallel.proc.exhausted").inc()
            raise PoolExhaustedError(
                f"all {self.workers} process-pool workers are busy",
                retry_after=retry_after,
            )
        return checked_out

    def _checkin(self, workers: list[_Worker]) -> None:
        with self._lock:
            self._busy -= len(workers)
            if self._closed:
                doomed = list(workers)
            else:
                alive = [w for w in workers if w.alive() and w.busy_seq is None]
                doomed = [w for w in workers if w not in alive]
                self._idle.extend(alive)
        for worker in doomed:
            worker.kill()

    def shutdown(self) -> None:
        """Stop every worker (idle ones politely, then hard).  Idempotent."""
        with self._lock:
            self._closed = True
            workers, self._idle = self._idle, []
        for worker in workers:
            try:
                worker.conn.send(("exit",))
            except Exception:
                pass
        deadline = time.monotonic() + 2.0
        for worker in workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.kill()
            else:
                try:
                    worker.conn.close()
                except Exception:  # pragma: no cover
                    pass
        with self._lock:
            self._closed = False  # pools are reusable after shutdown

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _bump(self, key: str, by: int = 1) -> None:
        with self._lock:
            self._stats[key] += by

    def stats(self) -> dict:
        with self._lock:
            snapshot = dict(self._stats)
            snapshot["idle"] = len(self._idle)
            snapshot["size"] = self.workers
        return snapshot

    # ------------------------------------------------------------------
    # the supervised batch
    # ------------------------------------------------------------------
    def run(self, calls, *, deadline: Deadline | None = None) -> list:
        """Execute *calls* (:class:`ProcCall` instances), results in order.

        The batch settles completely before any error is raised; the
        error with the smallest call index wins, matching
        :func:`repro.parallel.pool.run_tasks`.  After the first error no
        *new* tasks are dispatched (fail-fast), so a poisoned batch does
        not burn the remaining shards' work."""
        calls = list(calls)
        if not calls:
            return []
        for call in calls:
            if not isinstance(call, ProcCall):
                raise ParallelError(
                    f"process backend tasks must be ProcCall, got {type(call).__name__}"
                )
        start = time.monotonic()
        self._bump("runs")
        with obs.tracer().span(
            "parallel.proc.run", tasks=len(calls), workers=self.workers
        ):
            # flight rings are per-run: created lazily per dispatched
            # worker, salvaged on crash, unlinked with the registry when
            # the run ends (keeping the shm leak oracle clean)
            flight_registry = None
            if obs.enabled():
                from repro.parallel.shm import SegmentRegistry

                flight_registry = SegmentRegistry()
            flight_rings: dict[int, object] = {}
            team = self._checkout(min(len(calls), self.workers))
            try:
                results = self._supervise(
                    team, calls, deadline, flight_rings, flight_registry
                )
            finally:
                self._checkin(team)
                if flight_registry is not None:
                    flight_registry.close()
        elapsed = time.monotonic() - start
        self._mean_run_seconds = 0.8 * self._mean_run_seconds + 0.2 * elapsed
        return results

    def _obs_spec(self, worker: _Worker, flight_rings, flight_registry):
        """The obs block shipped with one dispatch (``None`` when off)."""
        if not obs.enabled():
            return None
        if worker.worker_id not in flight_rings and flight_registry is not None:
            from repro.parallel import flight

            try:
                flight_rings[worker.worker_id] = flight.create_ring(flight_registry)
            except Exception:  # no ring is a degraded recorder, not an error
                flight_rings[worker.worker_id] = None
        ring = flight_rings.get(worker.worker_id)
        tracer = obs.tracer()
        return {
            "worker": worker.worker_id,
            "epoch": tracer.epoch_ns,
            "sink": tracer.sink_path,
            "flight": ring.name if ring is not None else None,
        }

    def _fold_harvest(self, harvest) -> None:
        """Merge one worker's piggybacked telemetry into this process."""
        if not harvest:
            return
        self._bump("harvests")
        if not obs.enabled():  # worker raced a parent-side disable; drop
            return
        delta = harvest.get("metrics")
        if delta:
            obs.metrics().merge(delta, labels={"worker": harvest["worker"]})
        tracer = obs.tracer()
        for record in harvest.get("spans") or ():
            tracer.ingest(record)
        obs.metrics().counter("parallel.proc.harvests").inc()

    def _salvage_flight(self, worker: _Worker, flight_rings, cause: str) -> None:
        """A worker is being declared dead: recover its flight ring and
        emit the ``worker.crash`` event with its last-known activity."""
        if not obs.enabled():
            return
        obs.metrics().counter("parallel.proc.crashes." + cause).inc()
        ring = flight_rings.get(worker.worker_id)
        salvaged: list = []
        if ring is not None:
            from repro.parallel import flight

            salvaged = flight.salvage(ring)
        obs.tracer().event(
            "worker.crash",
            worker=worker.worker_id,
            pid=worker.process.pid,
            cause=cause,
            salvaged=salvaged,
        )

    def _supervise(
        self,
        team: list[_Worker],
        calls,
        deadline,
        flight_rings: dict | None = None,
        flight_registry=None,
    ) -> list:
        if flight_rings is None:
            flight_rings = {}
        pending = list(range(len(calls)))  # call indices not yet dispatched
        attempts = {index: 0 for index in pending}
        seq_to_index: dict[int, int] = {}
        results: dict[int, object] = {}
        errors: dict[int, BaseException] = {}
        crashes = 0
        settled = 0
        total = len(calls)

        def dispatch(worker: _Worker, index: int) -> None:
            seq = next(self._task_seq)
            seq_to_index[seq] = index
            worker.busy_seq = seq
            worker.dispatched_at = time.monotonic()
            spec = self._obs_spec(worker, flight_rings, flight_registry)
            try:
                worker.conn.send(("task", seq, calls[index], spec))
            except OSError:
                # the worker died while idle mid-batch (e.g. OOM-killed
                # after finishing a task) — sentinels are only waited on
                # for busy workers, so the broken pipe is the first sign.
                # Treat it exactly like a sentinel-detected crash: typed,
                # contained, retried on a replacement.
                declare_crash(worker, "dead at dispatch", cause="dead_at_dispatch")

        def declare_crash(
            worker: _Worker,
            reason: str,
            *,
            stalled: bool = False,
            cause: str = "sigkill",
        ) -> None:
            """One worker lost mid-batch: bookkeeping, retry-or-fail of its
            task, the tolerance check, respawn, and (if work remains) an
            immediate dispatch to the replacement."""
            nonlocal crashes
            crashes += 1
            self._bump("crashes")
            self._bump("crash_" + cause)
            if stalled:
                self._bump("stalls")
            if obs.enabled():
                obs.metrics().counter("parallel.proc.crashes").inc()
            worker.kill()  # before salvage, so the ring is quiescent
            self._salvage_flight(worker, flight_rings, cause)
            requeue_or_fail(worker, reason)
            if crashes > self.crash_tolerance:
                for other in team:
                    if other.busy_seq is not None:
                        other.kill()
                        other.busy_seq = None
                raise WorkerCrashError(
                    f"{crashes} worker crashes in one batch exceeded the"
                    f" tolerance of {self.crash_tolerance}"
                )
            replacement = self._replace(worker, team)
            if pending and not errors:
                dispatch(replacement, pending.pop(0))

        def requeue_or_fail(worker: _Worker, reason: str) -> None:
            """The task in flight on a dead worker: retry it or record the
            crash as its error."""
            nonlocal settled
            seq = worker.busy_seq
            worker.busy_seq = None
            if seq is None:
                return
            index = seq_to_index.pop(seq)
            attempts[index] += 1
            if attempts[index] <= self.task_retries and not errors:
                pending.insert(0, index)
                self._bump("retries")
                if obs.enabled():
                    obs.metrics().counter("parallel.proc.retries").inc()
            else:
                errors.setdefault(
                    index,
                    WorkerCrashError(
                        f"task {index} lost its worker {attempts[index]} time(s)"
                        f" ({reason}); retry budget is {self.task_retries}"
                    ),
                )
                settled += 1

        # prime every checked-out worker
        for worker in team:
            if pending:
                dispatch(worker, pending.pop(0))

        while settled < total:
            # nothing in flight and nothing dispatchable → the batch is
            # as settled as it will get (fail-fast left tasks unrun)
            busy = [w for w in team if w.busy_seq is not None]
            if not busy:
                if pending and not errors:
                    # can only happen if every worker died and respawn
                    # was exhausted — surface as a crash error
                    raise WorkerCrashError(
                        "process pool lost every worker mid-batch"
                    )
                break
            timeout = self.stall_timeout
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    for worker in busy:
                        worker.kill()
                        self._bump("crash_deadline")
                        self._salvage_flight(worker, flight_rings, "deadline")
                        self._replace(worker, team)
                    raise DeadlineExceededError(
                        "process-pool batch exceeded its deadline"
                    )
                timeout = min(timeout, remaining)
            waitables = [w.conn for w in busy] + [w.process.sentinel for w in busy]
            ready = mpconn.wait(waitables, timeout=min(timeout, 0.5))
            now = time.monotonic()
            progressed = False

            for worker in list(busy):
                if worker.conn in ready:
                    try:
                        kind, seq, payload, harvest = worker.conn.recv()
                    except (EOFError, OSError):
                        continue  # death; the sentinel branch handles it
                    progressed = True
                    worker.busy_seq = None
                    self._fold_harvest(harvest)
                    index = seq_to_index.pop(seq, None)
                    if index is None:  # a pre-crash straggler; ignore
                        continue
                    if kind == "ok":
                        results[index] = payload
                    else:
                        errors.setdefault(index, payload)
                    settled += 1
                    self._bump("tasks")
                    if obs.enabled():
                        obs.metrics().counter("parallel.proc.tasks").inc()
                    if pending and not errors:
                        dispatch(worker, pending.pop(0))

            for worker in list(team):
                if worker.busy_seq is None:
                    continue
                died = not worker.alive()
                stalled = (
                    not died
                    and self.stall_timeout > 0
                    and now - worker.dispatched_at > self.stall_timeout
                )
                if not died and not stalled:
                    continue
                progressed = True
                declare_crash(
                    worker,
                    "stalled" if stalled else "crashed",
                    stalled=stalled,
                    cause="stall" if stalled else "sigkill",
                )

            if not progressed and pending and not errors:
                # wait timed out without news but capacity exists (e.g. a
                # worker finished exactly at the old loop edge): dispatch
                for worker in team:
                    if worker.busy_seq is None and pending:
                        dispatch(worker, pending.pop(0))

        if errors:
            raise errors[min(errors)]
        return [results[index] for index in range(total)]

    def _replace(self, dead: _Worker, team: list[_Worker]) -> _Worker:
        replacement = self._spawn()
        team[team.index(dead)] = replacement
        self._bump("respawned")
        if obs.enabled():
            obs.metrics().counter("parallel.proc.respawned").inc()
        return replacement


# ----------------------------------------------------------------------
# the module-level pool (what the ``"process"`` backend uses)
# ----------------------------------------------------------------------
def _default_start_method() -> str:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    # fork is milliseconds per worker and inherits warm imports; spawn is
    # the portable fallback.  configure_pool() overrides for tests that
    # assert spawn-mode parity.
    return "fork" if "fork" in methods else "spawn"


_pool_lock = threading.Lock()
_pool: ProcPool | None = None


def _reset_after_fork() -> None:  # pragma: no cover - runs in the child
    """Fork-started workers inherit ``_pool`` — and the parent's ``atexit``
    registration of :func:`shutdown_pool` — by memory copy.  Pool ownership
    never crosses ``fork()``: a child running the parent's shutdown would
    ``join()`` processes that are not its children (an ``AssertionError``
    during atexit) and send ``("exit",)`` down inherited duplicate pipe fds
    to sibling workers.  Drop the handle (and renew the lock, which another
    thread could have held at fork time) so child-side shutdown is a no-op
    — mirroring ``shm._reset_after_fork``."""
    global _pool, _pool_lock
    _pool_lock = threading.Lock()
    _pool = None


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


def get_pool() -> ProcPool:
    """The shared pool, created on first use with default sizing."""
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ProcPool()
        return _pool


def configure_pool(**kwargs) -> ProcPool:
    """Replace the shared pool (shutting down the old one).

    Keyword arguments are those of :class:`ProcPool` — ``workers``,
    ``start_method``, ``chaos``, ``stall_timeout``, ``crash_tolerance``,
    ``task_retries``."""
    global _pool
    with _pool_lock:
        old, _pool = _pool, None
    if old is not None:
        old.shutdown()
    fresh = ProcPool(**kwargs)
    with _pool_lock:
        _pool = fresh
    return fresh


def shutdown_pool() -> None:
    """Shut down and drop the shared pool (it respawns on next use)."""
    global _pool
    with _pool_lock:
        old, _pool = _pool, None
    if old is not None:
        old.shutdown()


def pool_stats() -> dict | None:
    """The shared pool's :meth:`ProcPool.stats`, or ``None`` if no pool
    has been created yet (stats never force a spawn)."""
    with _pool_lock:
        pool = _pool
    return pool.stats() if pool is not None else None


atexit.register(shutdown_pool)
