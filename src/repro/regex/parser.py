"""Recursive-descent parser for spanner regexes.

Concrete syntax
---------------

::

    regex    :=  alt
    alt      :=  concat ('|' concat)*
    concat   :=  repeated*
    repeated :=  atom ('*' | '+' | '?' | '{' m (',' n?)? '}')*
    atom     :=  literal | '.' | class | '(' alt? ')'
              |  '!' name '{' alt '}'          -- variable capture x▷…◁x
              |  '&' name                      -- reference (refl-spanners)
    class    :=  '[' '^'? (char | char '-' char)+ ']'
    literal  :=  any non-metacharacter, or '\\' metacharacter

Metacharacters are ``| * + ? ( ) { } [ ] . & ! \\``; escape them with a
backslash.  Variable names match ``[A-Za-z_][A-Za-z0-9_]*``.

Examples (the paper's expressions in this syntax):

* Example 1.1's ``α``:        ``!x{(a|b)*}!y{b}!z{(a|b)*}``
* the refl-spanner (3):       ``ab*!x{(a|b)*}(b|c)*!y{&x}b*``
"""

from __future__ import annotations

from repro.errors import RegexSyntaxError
from repro.regex.ast import (
    Alt,
    AnyChar,
    Capture,
    ClassNode,
    Concat,
    Epsilon,
    Literal,
    Maybe,
    Node,
    Plus,
    Reference,
    Repeat,
    Star,
)

__all__ = ["parse"]

_META = set("|*+?(){}[].&!\\")
_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CONT = _NAME_START | set("0123456789")

#: maximum nesting depth of groups/captures.  The parser (and every later
#: AST walk: compilation, optimisation) recurses once per nesting level, so
#: a hostile pattern like "(" * 10_000 would otherwise escape as an uncaught
#: RecursionError — a crash vector for the serving layer, where patterns
#: arrive from untrusted requests.  100 levels is far beyond any real
#: spanner regex and keeps the whole pipeline comfortably inside the
#: interpreter's default stack.
_MAX_DEPTH = 100

#: control-character escapes; any other escaped character stands for itself
_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0"}


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0
        self.depth = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def peek(self) -> str | None:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def take(self) -> str:
        ch = self.peek()
        if ch is None:
            raise RegexSyntaxError("unexpected end of pattern", self.pos)
        self.pos += 1
        return ch

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise RegexSyntaxError(f"expected {ch!r}", self.pos)
        self.pos += 1

    def error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pos)

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse(self) -> Node:
        node = self.alt()
        if self.pos != len(self.pattern):
            raise self.error(f"unexpected {self.peek()!r}")
        return node

    def alt(self) -> Node:
        # every nesting level — '(...)' and '!x{...}' — re-enters here, so
        # one guard bounds the recursion of the whole grammar
        self.depth += 1
        if self.depth > _MAX_DEPTH:
            raise self.error(
                f"pattern nesting exceeds the depth limit of {_MAX_DEPTH}"
            )
        try:
            parts = [self.concat()]
            while self.peek() == "|":
                self.take()
                parts.append(self.concat())
            return parts[0] if len(parts) == 1 else Alt(tuple(parts))
        finally:
            self.depth -= 1

    def concat(self) -> Node:
        parts: list[Node] = []
        while True:
            ch = self.peek()
            if ch is None or ch in "|)}":
                break
            parts.append(self.repeated())
        if not parts:
            return Epsilon()
        return parts[0] if len(parts) == 1 else Concat(tuple(parts))

    def repeated(self) -> Node:
        node = self.atom()
        while True:
            ch = self.peek()
            if ch == "*":
                self.take()
                node = Star(node)
            elif ch == "+":
                self.take()
                node = Plus(node)
            elif ch == "?":
                self.take()
                node = Maybe(node)
            elif ch == "{":
                node = self.repetition(node)
            else:
                return node

    def repetition(self, inner: Node) -> Node:
        self.expect("{")
        low = self.number()
        high: int | None = low
        if self.peek() == ",":
            self.take()
            high = None if self.peek() == "}" else self.number()
        self.expect("}")
        if high is not None and high < low:
            raise self.error(f"bad repetition bounds {{{low},{high}}}")
        return Repeat(inner, low, high)

    def number(self) -> int:
        # ASCII digits only: str.isdigit() also accepts e.g. superscripts
        # ('²') and other Unicode digit classes, which int() then rejects
        # with a bare ValueError — the fuzzing contract demands a typed
        # RegexSyntaxError instead (same fix as repro.slp.cde's integer())
        digits = ""
        while (ch := self.peek()) is not None and ch in "0123456789":
            digits += self.take()
        if not digits:
            raise self.error("expected a number")
        return int(digits)

    def name(self) -> str:
        ch = self.peek()
        if ch is None or ch not in _NAME_START:
            raise self.error("expected a variable name")
        chars = [self.take()]
        while (ch := self.peek()) is not None and ch in _NAME_CONT:
            chars.append(self.take())
        return "".join(chars)

    def atom(self) -> Node:
        ch = self.peek()
        if ch is None:
            raise self.error("expected an atom")
        if ch == "(":
            self.take()
            if self.peek() == ")":
                self.take()
                return Epsilon()
            node = self.alt()
            self.expect(")")
            return node
        if ch == "[":
            return self.char_class()
        if ch == ".":
            self.take()
            return AnyChar()
        if ch == "!":
            self.take()
            var = self.name()
            self.expect("{")
            inner = self.alt()
            self.expect("}")
            return Capture(var, inner)
        if ch == "&":
            self.take()
            return Reference(self.name())
        if ch == "\\":
            self.take()
            escaped = self.take()
            return Literal(_ESCAPES.get(escaped, escaped))
        if ch in _META:
            raise self.error(f"unexpected metacharacter {ch!r}")
        return Literal(self.take())

    def char_class(self) -> Node:
        self.expect("[")
        negated = False
        if self.peek() == "^":
            self.take()
            negated = True
        chars: set[str] = set()
        first = True
        while True:
            ch = self.peek()
            if ch is None:
                raise self.error("unterminated character class")
            if ch == "]" and not first:
                self.take()
                break
            first = False
            low = self._class_char()
            if self.peek() == "-" and self.pattern[self.pos + 1: self.pos + 2] not in ("]", ""):
                self.take()
                high = self._class_char()
                if ord(high) < ord(low):
                    raise self.error(f"bad range {low}-{high}")
                chars.update(chr(code) for code in range(ord(low), ord(high) + 1))
            else:
                chars.add(low)
        if not chars:
            raise self.error("empty character class")
        return ClassNode(frozenset(chars), negated)

    def _class_char(self) -> str:
        """One (possibly escaped) character inside a character class."""
        ch = self.take()
        if ch != "\\":
            return ch
        escaped = self.take()
        return _ESCAPES.get(escaped, escaped)


def parse(pattern: str) -> Node:
    """Parse *pattern* into a regex AST.

    Raises :class:`~repro.errors.RegexSyntaxError` with the failing offset
    on malformed input.
    """
    return _Parser(pattern).parse()
