"""Thompson compilation of spanner regexes to automata.

Three entry points, by increasing expressiveness:

* :func:`compile_nfa` — any regex without captures/references → plain NFA
  (a classical regular expression);
* :func:`spanner_from_regex` — a regex-formula (captures, no references) →
  :class:`~repro.automata.vset.VSetAutomaton`, i.e. a regular spanner;
* :func:`ref_nfa_from_regex` — a regex with references → the NFA over
  ``Σ ∪ markers ∪ refs`` underlying a refl-spanner (Section 3).
"""

from __future__ import annotations

from repro.automata.nfa import NFA
from repro.automata.ops import concat as nfa_concat
from repro.automata.ops import epsilon_nfa, never_nfa, optional as nfa_optional
from repro.automata.ops import plus as nfa_plus, star as nfa_star, union as nfa_union
from repro.automata.vset import VSetAutomaton
from repro.core.alphabet import CharClass, Close, DOT, Open
from repro.core.alphabet import Ref as RefSymbol
from repro.errors import RegexSyntaxError
from repro.regex import ast
from repro.regex.parser import parse

__all__ = [
    "compile_ast",
    "compile_nfa",
    "spanner_from_regex",
    "ref_nfa_from_regex",
]


def _single_symbol(symbol) -> NFA:
    nfa = NFA()
    source = nfa.add_state(initial=True)
    target = nfa.add_state(accepting=True)
    nfa.add_arc(source, symbol, target)
    return nfa


def compile_ast(node: ast.Node) -> NFA:
    """Thompson construction over the extended alphabet."""
    if isinstance(node, ast.Epsilon):
        return epsilon_nfa()
    if isinstance(node, ast.Literal):
        return _single_symbol(node.char)
    if isinstance(node, ast.AnyChar):
        return _single_symbol(DOT)
    if isinstance(node, ast.ClassNode):
        return _single_symbol(CharClass(node.chars, node.negated))
    if isinstance(node, ast.Concat):
        return nfa_concat(*(compile_ast(p) for p in node.parts))
    if isinstance(node, ast.Alt):
        return nfa_union(*(compile_ast(p) for p in node.parts))
    if isinstance(node, ast.Star):
        return nfa_star(compile_ast(node.inner))
    if isinstance(node, ast.Plus):
        return nfa_plus(compile_ast(node.inner))
    if isinstance(node, ast.Maybe):
        return nfa_optional(compile_ast(node.inner))
    if isinstance(node, ast.Repeat):
        inner = node.inner
        required = [compile_ast(inner) for _ in range(node.low)]
        if node.high is None:
            return nfa_concat(*required, nfa_star(compile_ast(inner)))
        extras = [nfa_optional(compile_ast(inner)) for _ in range(node.high - node.low)]
        pieces = required + extras
        return nfa_concat(*pieces) if pieces else epsilon_nfa()
    if isinstance(node, ast.Capture):
        return nfa_concat(
            _single_symbol(Open(node.var)),
            compile_ast(node.inner),
            _single_symbol(Close(node.var)),
        )
    if isinstance(node, ast.Reference):
        return _single_symbol(RefSymbol(node.var))
    raise RegexSyntaxError(f"cannot compile node {node!r}", 0)  # pragma: no cover


def _parse_checked(pattern: str | ast.Node) -> ast.Node:
    node = parse(pattern) if isinstance(pattern, str) else pattern
    ast.check_capture_validity(node)
    return node


def compile_nfa(pattern: str | ast.Node) -> NFA:
    """Compile a *plain* regular expression (no captures, no references)."""
    node = _parse_checked(pattern)
    if ast.variables_of(node) or ast.references_of(node):
        raise RegexSyntaxError(
            "plain regex expected; use spanner_from_regex for captures", 0
        )
    return compile_ast(node)


def spanner_from_regex(
    pattern: str | ast.Node, functional: bool | None = None
) -> VSetAutomaton:
    """Compile a regex-formula into a regular spanner.

    If *functional* is ``None`` it is inferred: the spanner is flagged
    functional iff every accepted word marks every variable (checked on the
    compiled automaton).
    """
    node = _parse_checked(pattern)
    if ast.references_of(node):
        raise RegexSyntaxError(
            "regex contains references; build a ReflSpanner instead", 0
        )
    spanner = VSetAutomaton(compile_ast(node), ast.variables_of(node))
    if functional is None:
        functional = spanner.is_functional()
    spanner.functional = functional
    return spanner


def ref_nfa_from_regex(pattern: str | ast.Node) -> tuple[NFA, frozenset[str]]:
    """Compile a regex with references into the NFA of a ref-language.

    Returns ``(nfa, variables)`` where *variables* are the captured
    variables.  Every referenced variable must also be captured somewhere
    in the regex.
    """
    node = _parse_checked(pattern)
    variables = ast.variables_of(node)
    dangling = ast.references_of(node) - variables
    if dangling:
        raise RegexSyntaxError(
            f"references to variables never captured: {sorted(dangling)}", 0
        )
    return compile_ast(node), variables
