"""Brzozowski derivatives: a second, independent regex matching engine.

The library's primary pipeline compiles regexes via Thompson's construction
and runs NFAs.  This module evaluates plain regular expressions *directly
on the AST* using Brzozowski derivatives:

    ∂_c(r) = the regex matching { w : c·w ∈ L(r) }

Membership is then ``nullable(∂_{c1}(… ∂_{cn}(r) …))``.  The two engines
share nothing beyond the parser, so agreement between them is a strong
cross-check — exercised by the property tests — and the derivative engine
doubles as a reference oracle for the automata toolkit.

Only capture- and reference-free regexes are supported (derivatives of
spanner captures would need Antimirov-style partial derivative machinery,
out of scope here).
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import RegexSyntaxError
from repro.regex import ast
from repro.regex.parser import parse

__all__ = ["nullable", "derivative", "matches"]

_EMPTY = ast.ClassNode(frozenset(), negated=False)  # matches no character


def _is_void(node: ast.Node) -> bool:
    """Syntactic check for the empty *language* (sound, not complete —
    used only to keep derivatives small)."""
    if isinstance(node, ast.ClassNode):
        return not node.negated and not node.chars
    if isinstance(node, ast.Concat):
        return any(_is_void(part) for part in node.parts)
    if isinstance(node, ast.Alt):
        return all(_is_void(part) for part in node.parts)
    return False


def nullable(node: ast.Node) -> bool:
    """Does the regex match the empty word?"""
    if isinstance(node, ast.Epsilon):
        return True
    if isinstance(node, (ast.Literal, ast.AnyChar, ast.ClassNode)):
        return False
    if isinstance(node, ast.Concat):
        return all(nullable(part) for part in node.parts)
    if isinstance(node, ast.Alt):
        return any(nullable(part) for part in node.parts)
    if isinstance(node, (ast.Star, ast.Maybe)):
        return True
    if isinstance(node, ast.Plus):
        return nullable(node.inner)
    if isinstance(node, ast.Repeat):
        return node.low == 0 or nullable(node.inner)
    raise RegexSyntaxError(
        f"derivatives do not support {type(node).__name__} nodes", 0
    )


def _concat(parts: tuple[ast.Node, ...]) -> ast.Node:
    flat: list[ast.Node] = []
    for part in parts:
        if _is_void(part):
            return _EMPTY
        if isinstance(part, ast.Epsilon):
            continue
        if isinstance(part, ast.Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return ast.Epsilon()
    if len(flat) == 1:
        return flat[0]
    return ast.Concat(tuple(flat))


def _alt(parts: tuple[ast.Node, ...]) -> ast.Node:
    flat: list[ast.Node] = []
    for part in parts:
        if _is_void(part):
            continue
        if isinstance(part, ast.Alt):
            flat.extend(p for p in part.parts if p not in flat)
        elif part not in flat:
            flat.append(part)
    if not flat:
        return _EMPTY
    if len(flat) == 1:
        return flat[0]
    return ast.Alt(tuple(flat))


def derivative(node: ast.Node, ch: str) -> ast.Node:
    """The Brzozowski derivative ∂_ch(node), lightly simplified."""
    if isinstance(node, ast.Epsilon):
        return _EMPTY
    if isinstance(node, ast.Literal):
        return ast.Epsilon() if node.char == ch else _EMPTY
    if isinstance(node, ast.AnyChar):
        return ast.Epsilon()
    if isinstance(node, ast.ClassNode):
        matched = (ch in node.chars) != node.negated
        return ast.Epsilon() if matched else _EMPTY
    if isinstance(node, ast.Concat):
        head, *tail = node.parts
        rest = tuple(tail)
        first = _concat((derivative(head, ch),) + rest)
        if nullable(head) and rest:
            return _alt((first, derivative(_concat(rest), ch)))
        return first
    if isinstance(node, ast.Alt):
        return _alt(tuple(derivative(part, ch) for part in node.parts))
    if isinstance(node, ast.Star):
        return _concat((derivative(node.inner, ch), node))
    if isinstance(node, ast.Plus):
        return _concat((derivative(node.inner, ch), ast.Star(node.inner)))
    if isinstance(node, ast.Maybe):
        return derivative(node.inner, ch)
    if isinstance(node, ast.Repeat):
        if node.high == 0:
            return _EMPTY
        low = max(0, node.low - 1)
        high = None if node.high is None else node.high - 1
        remainder: ast.Node
        if high == 0:
            remainder = ast.Epsilon()
        else:
            remainder = ast.Repeat(node.inner, low, high)
        return _concat((derivative(node.inner, ch), remainder))
    raise RegexSyntaxError(
        f"derivatives do not support {type(node).__name__} nodes", 0
    )


def matches(pattern: str | ast.Node, word: str) -> bool:
    """Full-match membership via iterated derivatives."""
    node = parse(pattern) if isinstance(pattern, str) else pattern
    if ast.variables_of(node) or ast.references_of(node):
        raise RegexSyntaxError("derivatives support plain regexes only", 0)
    for ch in word:
        node = derivative(node, ch)
        if _is_void(node):
            return False
    return nullable(node)
