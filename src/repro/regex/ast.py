"""Abstract syntax trees for spanner regexes.

The concrete syntax (see :mod:`repro.regex.parser`) extends classical
regular expressions with two constructs from the document-spanner world:

* ``!x{ … }`` — a *variable capture*, the paper's ``x▷ … ◁x``.  Regexes
  whose only extension is capture are exactly the *regex-formulas* (RGX)
  of [9];
* ``&x`` — a *reference*, the ref-word symbol ``x`` of refl-spanners
  (Section 3).

AST nodes are immutable dataclasses.  :func:`variables_of` /
:func:`references_of` collect symbol usage, and
:func:`check_capture_validity` enforces that the regex denotes a valid
subword-marked/ref language: no variable captured twice on the same path
and no capture under an unbounded repetition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import RegexSyntaxError

__all__ = [
    "Node",
    "Epsilon",
    "Literal",
    "AnyChar",
    "ClassNode",
    "Concat",
    "Alt",
    "Star",
    "Plus",
    "Maybe",
    "Repeat",
    "Capture",
    "Reference",
    "variables_of",
    "references_of",
    "check_capture_validity",
]


class Node:
    """Base class of all regex AST nodes."""

    def children(self) -> tuple["Node", ...]:
        return ()

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Epsilon(Node):
    """Matches the empty word (spelled ``()`` in the concrete syntax)."""

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Literal(Node):
    """A single concrete character."""

    char: str

    def __str__(self) -> str:
        return "\\" + self.char if self.char in _METACHARS else self.char


@dataclass(frozen=True)
class AnyChar(Node):
    """The wildcard ``.``."""

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class ClassNode(Node):
    """A character class ``[abc]`` / ``[^abc]`` (ranges already expanded)."""

    chars: frozenset[str]
    negated: bool = False

    def __str__(self) -> str:
        inner = "".join(sorted(self.chars))
        return f"[^{inner}]" if self.negated else f"[{inner}]"


@dataclass(frozen=True)
class Concat(Node):
    parts: tuple[Node, ...]

    def children(self) -> tuple[Node, ...]:
        return self.parts

    def __str__(self) -> str:
        return "".join(_wrap(p, for_concat=True) for p in self.parts)


@dataclass(frozen=True)
class Alt(Node):
    parts: tuple[Node, ...]

    def children(self) -> tuple[Node, ...]:
        return self.parts

    def __str__(self) -> str:
        return "|".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Star(Node):
    inner: Node

    def children(self) -> tuple[Node, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return _wrap(self.inner) + "*"


@dataclass(frozen=True)
class Plus(Node):
    inner: Node

    def children(self) -> tuple[Node, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return _wrap(self.inner) + "+"


@dataclass(frozen=True)
class Maybe(Node):
    """Zero-or-one (``?``)."""

    inner: Node

    def children(self) -> tuple[Node, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return _wrap(self.inner) + "?"


@dataclass(frozen=True)
class Repeat(Node):
    """Bounded repetition ``{low,high}``; ``high is None`` means unbounded."""

    inner: Node
    low: int
    high: int | None

    def children(self) -> tuple[Node, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        if self.high is None:
            spec = f"{{{self.low},}}"
        elif self.high == self.low:
            spec = f"{{{self.low}}}"
        else:
            spec = f"{{{self.low},{self.high}}}"
        return _wrap(self.inner) + spec


@dataclass(frozen=True)
class Capture(Node):
    """A variable capture ``!var{inner}`` — the paper's ``var▷ inner ◁var``."""

    var: str
    inner: Node

    def children(self) -> tuple[Node, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"!{self.var}{{{self.inner}}}"


@dataclass(frozen=True)
class Reference(Node):
    """A reference ``&var`` to the factor captured by *var* (refl-spanners)."""

    var: str

    def __str__(self) -> str:
        return f"&{self.var}"


_METACHARS = set("|*+?(){}[].&!\\")


def _wrap(node: Node, for_concat: bool = False) -> str:
    """Parenthesise where needed when unparsing."""
    needs = isinstance(node, Alt) or (for_concat and isinstance(node, Concat))
    text = str(node)
    return f"({text})" if needs else text


def variables_of(node: Node) -> frozenset[str]:
    """All capture variables occurring in the regex."""
    return frozenset(n.var for n in node.walk() if isinstance(n, Capture))


def references_of(node: Node) -> frozenset[str]:
    """All referenced variables occurring in the regex."""
    return frozenset(n.var for n in node.walk() if isinstance(n, Reference))


def _may_repeat(node: Node) -> bool:
    return (
        isinstance(node, (Star, Plus))
        or (isinstance(node, Repeat) and (node.high is None or node.high > 1))
    )


def check_capture_validity(node: Node) -> None:
    """Reject regexes that cannot denote valid subword-marked languages.

    Two rules (matching the definition of regex-formulas in [9]):

    1. a capture must not occur under an unbounded or >1 repetition
       (its markers would occur more than once);
    2. the same variable must not be captured twice on one concatenation
       path, or nested within itself.  Re-capturing the same variable in
       *different alternation branches* is fine.
    """
    for ancestor in node.walk():
        if _may_repeat(ancestor):
            captured = variables_of(ancestor.children()[0])
            if captured:
                raise RegexSyntaxError(
                    f"variable(s) {sorted(captured)} captured under repetition",
                    position=0,
                )
    _check_path_uniqueness(node)


def _check_path_uniqueness(node: Node) -> frozenset[str]:
    """Return the variables captured on *some* path through *node*,
    raising if any path captures a variable twice."""
    if isinstance(node, Capture):
        inner = _check_path_uniqueness(node.inner)
        if node.var in inner:
            raise RegexSyntaxError(
                f"variable {node.var!r} captured within its own capture",
                position=0,
            )
        return inner | {node.var}
    if isinstance(node, Concat):
        seen: set[str] = set()
        for part in node.parts:
            captured = _check_path_uniqueness(part)
            clash = seen & captured
            if clash:
                raise RegexSyntaxError(
                    f"variable(s) {sorted(clash)} captured twice on one path",
                    position=0,
                )
            seen |= captured
        return frozenset(seen)
    if isinstance(node, Alt):
        union: set[str] = set()
        for part in node.parts:
            union |= _check_path_uniqueness(part)
        return frozenset(union)
    collected: set[str] = set()
    for child in node.children():
        collected |= _check_path_uniqueness(child)
    return frozenset(collected)
