"""Regex AST simplification.

A light, provably language-preserving rewrite pass used to keep compiled
automata small (smaller Thompson graphs → smaller determinised eVAs → less
preprocessing everywhere downstream):

* flatten nested concatenations and alternations;
* drop ε units from concatenations; collapse the empty class ∅ (annihilator);
* deduplicate alternation branches;
* collapse ``(r*)*``, ``(r?)?``, ``(r*)?``/``(r?)*`` to ``r*``;
* merge single-character alternation branches into one character class;
* canonicalise ``Repeat``: ``{1,1}`` disappears, ``{0,}`` becomes ``*``,
  ``{1,}`` becomes ``+``, ``{0,1}`` becomes ``?``.

Captures and references are left untouched (their positions are
semantics), but simplification recurses through them.  Property tests
check language equality against the unsimplified AST.
"""

from __future__ import annotations

from repro.regex import ast

__all__ = ["simplify"]

_EMPTY = ast.ClassNode(frozenset(), negated=False)


def _is_empty_language(node: ast.Node) -> bool:
    return isinstance(node, ast.ClassNode) and not node.negated and not node.chars


def _single_char_class(node: ast.Node) -> frozenset[str] | None:
    """The character set of a one-character node, else None."""
    if isinstance(node, ast.Literal):
        return frozenset({node.char})
    if isinstance(node, ast.ClassNode) and not node.negated and node.chars:
        return node.chars
    return None


def simplify(node: ast.Node) -> ast.Node:
    """A language-equivalent, usually smaller AST."""
    if isinstance(node, ast.Concat):
        parts: list[ast.Node] = []
        for part in map(simplify, node.parts):
            if isinstance(part, ast.Epsilon):
                continue
            if _is_empty_language(part):
                return _EMPTY
            if isinstance(part, ast.Concat):
                parts.extend(part.parts)
            else:
                parts.append(part)
        if not parts:
            return ast.Epsilon()
        return parts[0] if len(parts) == 1 else ast.Concat(tuple(parts))
    if isinstance(node, ast.Alt):
        branches: list[ast.Node] = []
        merged_chars: set[str] = set()
        saw_epsilon = False
        for part in map(simplify, node.parts):
            if _is_empty_language(part):
                continue
            if isinstance(part, ast.Epsilon):
                saw_epsilon = True
                continue
            chars = _single_char_class(part)
            if chars is not None:
                merged_chars |= chars
                continue
            if isinstance(part, ast.Alt):
                for sub in part.parts:
                    if sub not in branches:
                        branches.append(sub)
            elif part not in branches:
                branches.append(part)
        if merged_chars:
            merged: ast.Node = (
                ast.Literal(next(iter(merged_chars)))
                if len(merged_chars) == 1
                else ast.ClassNode(frozenset(merged_chars))
            )
            if merged not in branches:
                branches.insert(0, merged)
        if saw_epsilon:
            if not branches:
                return ast.Epsilon()
            inner = branches[0] if len(branches) == 1 else ast.Alt(tuple(branches))
            return simplify(ast.Maybe(inner))
        if not branches:
            return _EMPTY
        return branches[0] if len(branches) == 1 else ast.Alt(tuple(branches))
    if isinstance(node, ast.Star):
        inner = simplify(node.inner)
        if isinstance(inner, (ast.Star, ast.Plus, ast.Maybe)):
            return ast.Star(inner.inner)
        if isinstance(inner, ast.Epsilon) or _is_empty_language(inner):
            return ast.Epsilon()
        return ast.Star(inner)
    if isinstance(node, ast.Plus):
        inner = simplify(node.inner)
        if isinstance(inner, ast.Star):
            return inner
        if isinstance(inner, ast.Maybe):
            return ast.Star(inner.inner)
        if isinstance(inner, ast.Plus):
            return inner
        if isinstance(inner, ast.Epsilon):
            return ast.Epsilon()
        if _is_empty_language(inner):
            return _EMPTY
        return ast.Plus(inner)
    if isinstance(node, ast.Maybe):
        inner = simplify(node.inner)
        if isinstance(inner, (ast.Star, ast.Maybe)):
            return inner
        if isinstance(inner, ast.Plus):
            return ast.Star(inner.inner)
        if isinstance(inner, ast.Epsilon):
            return ast.Epsilon()
        if _is_empty_language(inner):
            return ast.Epsilon()
        return ast.Maybe(inner)
    if isinstance(node, ast.Repeat):
        inner = simplify(node.inner)
        if _is_empty_language(inner):
            return ast.Epsilon() if node.low == 0 else _EMPTY
        if isinstance(inner, ast.Epsilon):
            return ast.Epsilon()
        if node.low == 1 and node.high == 1:
            return inner
        if node.low == 0 and node.high is None:
            return ast.Star(inner)
        if node.low == 1 and node.high is None:
            return ast.Plus(inner)
        if node.low == 0 and node.high == 1:
            return ast.Maybe(inner)
        if node.high == 0:
            return ast.Epsilon()
        return ast.Repeat(inner, node.low, node.high)
    if isinstance(node, ast.Capture):
        return ast.Capture(node.var, simplify(node.inner))
    return node
