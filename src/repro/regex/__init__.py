"""Spanner regex engine: AST, parser, and Thompson compilation."""

from repro.regex.ast import (
    Alt,
    AnyChar,
    Capture,
    ClassNode,
    Concat,
    Epsilon,
    Literal,
    Maybe,
    Node,
    Plus,
    Reference,
    Repeat,
    Star,
    check_capture_validity,
    references_of,
    variables_of,
)
from repro.regex.compile import (
    compile_ast,
    compile_nfa,
    ref_nfa_from_regex,
    spanner_from_regex,
)
from repro.regex.optimize import simplify
from repro.regex.parser import parse

__all__ = [
    "Alt",
    "AnyChar",
    "Capture",
    "ClassNode",
    "Concat",
    "Epsilon",
    "Literal",
    "Maybe",
    "Node",
    "Plus",
    "Reference",
    "Repeat",
    "Star",
    "check_capture_validity",
    "compile_ast",
    "compile_nfa",
    "parse",
    "ref_nfa_from_regex",
    "references_of",
    "simplify",
    "spanner_from_regex",
    "variables_of",
]
