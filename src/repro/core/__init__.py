"""Core data model: spans, tuples, relations, marked words, spanner ABC."""

from repro.core.alphabet import (
    CharClass,
    Close,
    DOT,
    Marker,
    Open,
    Ref,
    char_class,
    marker_sort_key,
    sort_markers,
    symbol_matches,
)
from repro.core.marked import (
    MarkedWord,
    mark_document,
    parse_marked,
    sequence_is_sequential,
    unmarked,
)
from repro.core.spanner import Spanner
from repro.core.spans import Span, SpanRelation, SpanTuple, fuse, fuse_tuple

__all__ = [
    "CharClass",
    "Close",
    "DOT",
    "MarkedWord",
    "Marker",
    "Open",
    "Ref",
    "Span",
    "SpanRelation",
    "SpanTuple",
    "Spanner",
    "char_class",
    "fuse",
    "fuse_tuple",
    "mark_document",
    "marker_sort_key",
    "parse_marked",
    "sequence_is_sequential",
    "sort_markers",
    "symbol_matches",
    "unmarked",
]
