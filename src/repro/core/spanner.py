"""The abstract :class:`Spanner` interface.

A document spanner over Σ and X is a function mapping every document
``D ∈ Σ*`` to an (X, D)-relation.  All concrete spanner representations in
this library — regular spanners (vset-automata, spanner regexes), core
spanner expressions, and refl-spanners — implement this interface.
"""

from __future__ import annotations

import abc
from typing import Iterator

from repro.core.spans import SpanRelation, SpanTuple

__all__ = ["Spanner"]


class Spanner(abc.ABC):
    """Abstract base class of all spanner representations.

    Subclasses must provide :attr:`variables` and :meth:`evaluate`; the
    default :meth:`enumerate` materialises the full relation, but
    representations with dedicated enumeration algorithms (e.g. regular
    spanners, Section 2.5) override it.
    """

    @property
    @abc.abstractmethod
    def variables(self) -> frozenset[str]:
        """The variable set X of the spanner."""

    @abc.abstractmethod
    def evaluate(self, doc: str) -> SpanRelation:
        """The span relation ``S(doc)``, fully materialised."""

    def enumerate(self, doc: str) -> Iterator[SpanTuple]:
        """Enumerate ``S(doc)`` without repetition.

        The base implementation materialises; subclasses may stream.
        """
        yield from self.evaluate(doc)

    def model_check(self, doc: str, tup: SpanTuple) -> bool:
        """Decide ``tup ∈ S(doc)`` (the ModelChecking problem, Section 2.4).

        The base implementation materialises; representations with faster
        algorithms (regular and refl-spanners) override it.
        """
        return tup in self.evaluate(doc)

    def is_nonempty_on(self, doc: str) -> bool:
        """Decide ``S(doc) ≠ ∅`` (the NonEmptiness problem, Section 2.4)."""
        for _ in self.enumerate(doc):
            return True
        return False
