"""Subword-marked words and ref-words (Sections 2.1, 2.2, 3.1 of the paper).

A *subword-marked word* over Σ and X is a word over ``Σ ∪ {x▷, ◁x : x ∈ X}``
in which, for every variable, the opening and closing markers occur at most
once and in this order (exactly once per variable in the functional case).
Such a word ``w`` simultaneously represents

* a document ``e(w)`` — obtained by erasing all markers
  (:meth:`MarkedWord.erase`), and
* a span tuple ``st(w)`` — obtained by reading off the marker positions
  (:meth:`MarkedWord.span_tuple`).

A *ref-word* additionally may contain reference symbols ``x`` that stand for
a copy of whatever factor variable ``x`` extracted; the dereferencing
function ``d(·)`` (:meth:`MarkedWord.deref`) substitutes references by their
content in dependency order, reproducing the nested-substitution example of
Section 3.1.

The *extended* form (Option 2 of Section 2.2; extended vset-automata of
[10]) groups consecutive markers into sets: :meth:`MarkedWord.extended_blocks`
returns, for a word with ``n`` document characters, the ``n + 1`` marker sets
sitting between (and around) the characters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.alphabet import Marker, Open, Close, Ref, sort_markers
from repro.core.spans import Span, SpanTuple
from repro.errors import InvalidMarkedWordError

__all__ = ["MarkedWord", "mark_document"]


def _check_symbol(symbol: object) -> None:
    if isinstance(symbol, str):
        if len(symbol) != 1:
            raise InvalidMarkedWordError(
                f"document symbols must be single characters, got {symbol!r}"
            )
        return
    if isinstance(symbol, (Marker, Ref)):
        return
    raise InvalidMarkedWordError(f"invalid marked-word symbol: {symbol!r}")


@dataclass(frozen=True)
class MarkedWord:
    """An immutable subword-marked word or ref-word.

    The ``symbols`` tuple interleaves single-character strings (document
    symbols), :class:`Marker` objects, and — for ref-words —
    :class:`Ref` objects.

    Construction validates the subword-marking property:

    * every marker occurs at most once,
    * ``x▷`` precedes ``◁x`` and both occur together or not at all,
    * a reference ``x`` does not occur between ``x▷`` and ``◁x``.
    """

    symbols: tuple

    def __init__(self, symbols: Iterable) -> None:
        symbols = tuple(symbols)
        for symbol in symbols:
            _check_symbol(symbol)
        object.__setattr__(self, "symbols", symbols)
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        opened: set[str] = set()
        closed: set[str] = set()
        for symbol in self.symbols:
            if isinstance(symbol, Marker):
                if symbol.is_open:
                    if symbol.var in opened:
                        raise InvalidMarkedWordError(
                            f"marker {symbol.var}▷ occurs twice"
                        )
                    opened.add(symbol.var)
                else:
                    if symbol.var not in opened:
                        raise InvalidMarkedWordError(
                            f"◁{symbol.var} occurs before {symbol.var}▷"
                        )
                    if symbol.var in closed:
                        raise InvalidMarkedWordError(
                            f"marker ◁{symbol.var} occurs twice"
                        )
                    closed.add(symbol.var)
            elif isinstance(symbol, Ref):
                if symbol.var in opened and symbol.var not in closed:
                    raise InvalidMarkedWordError(
                        f"reference {symbol.var} occurs inside its own span"
                    )
        dangling = opened - closed
        if dangling:
            raise InvalidMarkedWordError(
                f"variables opened but never closed: {sorted(dangling)}"
            )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator:
        return iter(self.symbols)

    def __len__(self) -> int:
        return len(self.symbols)

    @property
    def variables(self) -> frozenset[str]:
        """Variables whose markers occur in the word."""
        return frozenset(
            s.var for s in self.symbols if isinstance(s, Marker) and s.is_open
        )

    @property
    def references(self) -> frozenset[str]:
        """Variables referenced by a ``Ref`` symbol somewhere in the word."""
        return frozenset(s.var for s in self.symbols if isinstance(s, Ref))

    def has_references(self) -> bool:
        """True if this is a proper ref-word (contains at least one reference)."""
        return any(isinstance(s, Ref) for s in self.symbols)

    def is_functional_for(self, variables: Iterable[str]) -> bool:
        """True if every variable of *variables* is marked in the word."""
        marked = self.variables
        return all(var in marked for var in variables)

    # ------------------------------------------------------------------
    # the paper's e(·) and st(·)
    # ------------------------------------------------------------------
    def erase(self) -> str:
        """The document ``e(w)``: erase all markers.

        Only defined for subword-marked words; dereference a ref-word first.
        """
        if self.has_references():
            raise InvalidMarkedWordError(
                "erase() on a ref-word: call deref() first to substitute references"
            )
        return "".join(s for s in self.symbols if isinstance(s, str))

    def span_tuple(self) -> SpanTuple:
        """The span tuple ``st(w)`` encoded by the marker positions.

        Positions are counted in the erased document (1-based spans).  Only
        defined for subword-marked words.
        """
        if self.has_references():
            raise InvalidMarkedWordError(
                "span_tuple() on a ref-word: call deref() first"
            )
        position = 1
        starts: dict[str, int] = {}
        spans: dict[str, Span] = {}
        for symbol in self.symbols:
            if isinstance(symbol, str):
                position += 1
            elif symbol.is_open:
                starts[symbol.var] = position
            else:
                spans[symbol.var] = Span(starts[symbol.var], position)
        return SpanTuple(spans)

    # ------------------------------------------------------------------
    # dereferencing: the paper's d(·)
    # ------------------------------------------------------------------
    def deref(self) -> "MarkedWord":
        """Substitute every reference by its content (the paper's ``d(·)``).

        The content of a variable is the factor between its markers *after*
        the references inside that factor have themselves been substituted
        (nested references are resolved in dependency order, as in the
        Section 3.1 example).  Raises :class:`InvalidMarkedWordError` for
        references to unmarked variables or cyclic reference dependencies.
        """
        if not self.has_references():
            return self
        regions = self._regions()
        for var in self.references:
            if var not in regions:
                raise InvalidMarkedWordError(
                    f"reference to variable {var!r} that is never marked"
                )
        contents: dict[str, str] = {}

        def content_of(var: str, active: tuple[str, ...]) -> str:
            if var in contents:
                return contents[var]
            if var in active:
                cycle = " -> ".join(active + (var,))
                raise InvalidMarkedWordError(f"cyclic reference dependency: {cycle}")
            chars: list[str] = []
            for symbol in regions[var]:
                if isinstance(symbol, str):
                    chars.append(symbol)
                elif isinstance(symbol, Ref):
                    chars.append(content_of(symbol.var, active + (var,)))
            contents[var] = "".join(chars)
            return contents[var]

        substituted: list = []
        for symbol in self.symbols:
            if isinstance(symbol, Ref):
                substituted.extend(content_of(symbol.var, ()))
            else:
                substituted.append(symbol)
        return MarkedWord(substituted)

    def _regions(self) -> dict[str, tuple]:
        """Map each marked variable to the symbols between its markers."""
        regions: dict[str, tuple] = {}
        starts: dict[str, int] = {}
        for index, symbol in enumerate(self.symbols):
            if isinstance(symbol, Marker):
                if symbol.is_open:
                    starts[symbol.var] = index + 1
                else:
                    regions[symbol.var] = self.symbols[starts[symbol.var]:index]
        return regions

    # ------------------------------------------------------------------
    # normal forms
    # ------------------------------------------------------------------
    def canonicalize(self) -> "MarkedWord":
        """Sort every block of consecutive markers into the canonical order.

        Two subword-marked words represent the same (document, span tuple)
        pair iff their canonical forms are equal (Section 2.2).
        """
        result: list = []
        block: list[Marker] = []
        for symbol in self.symbols:
            if isinstance(symbol, Marker):
                block.append(symbol)
            else:
                result.extend(sort_markers(block))
                block = []
                result.append(symbol)
        result.extend(sort_markers(block))
        return MarkedWord(result)

    def extended_blocks(self) -> tuple[tuple[frozenset, ...], str]:
        """The extended (marker-set) form of Option 2, Section 2.2.

        Returns ``(blocks, document)`` where ``document = e(w)`` and
        ``blocks[i]`` is the (possibly empty) set of markers sitting at
        position ``i + 1`` — i.e. before the ``i``-th document character, with
        ``blocks[len(document)]`` holding the trailing markers.

        Only defined for subword-marked words.
        """
        if self.has_references():
            raise InvalidMarkedWordError("extended_blocks() on a ref-word")
        chars: list[str] = []
        blocks: list[set] = [set()]
        for symbol in self.symbols:
            if isinstance(symbol, str):
                chars.append(symbol)
                blocks.append(set())
            else:
                blocks[-1].add(symbol)
        return tuple(frozenset(b) for b in blocks), "".join(chars)

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return "".join(
            symbol if isinstance(symbol, str) else str(symbol)
            for symbol in self.symbols
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MarkedWord({self})"


def mark_document(doc: str, tup: SpanTuple) -> MarkedWord:
    """Insert markers into *doc* as described by *tup* (canonical order).

    This is the inverse of ``(e, st)``: for the returned word ``w`` we have
    ``w.erase() == doc`` and ``w.span_tuple() == tup``.  Undefined variables
    simply contribute no markers (schemaless semantics).
    """
    if not tup.fits(doc):
        raise InvalidMarkedWordError(f"tuple {tup} does not fit document of length {len(doc)}")
    at_position: dict[int, list[Marker]] = {}
    for var, span in tup:
        at_position.setdefault(span.start, []).append(Open(var))
        at_position.setdefault(span.end, []).append(Close(var))
    symbols: list = []
    for position in range(1, len(doc) + 2):
        symbols.extend(sort_markers(at_position.get(position, [])))
        if position <= len(doc):
            symbols.append(doc[position - 1])
    return MarkedWord(symbols)


def parse_marked(text: str, open_char: str = "<", close_char: str = ">") -> MarkedWord:
    """Parse a compact textual notation for marked words (testing helper).

    The notation uses ``<x`` for ``x▷``, ``x>`` for ``◁x`` and ``&x`` for a
    reference, each enclosed in brackets: e.g. ``"[<x]ab[x>]c[&x]"``.
    Variable names are alphanumeric.
    """
    symbols: list = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch != "[":
            symbols.append(ch)
            index += 1
            continue
        end = text.find("]", index)
        if end < 0:
            raise InvalidMarkedWordError(f"unterminated marker bracket at {index}")
        token = text[index + 1:end]
        if token.startswith(open_char):
            symbols.append(Open(token[1:]))
        elif token.endswith(close_char):
            symbols.append(Close(token[:-1]))
        elif token.startswith("&"):
            symbols.append(Ref(token[1:]))
        else:
            raise InvalidMarkedWordError(f"unrecognised marker token {token!r}")
        index = end + 1
    return MarkedWord(symbols)


def unmarked(doc: str) -> MarkedWord:
    """The trivial subword-marked word of a bare document (no markers)."""
    return MarkedWord(tuple(doc))


def sequence_is_sequential(symbols: Sequence) -> bool:
    """True if every reference occurs after its variable's closing marker.

    Refl-spanner *evaluation on documents* requires this (Section 3.3's
    left-to-right algorithm); general ref-words may violate it and are still
    dereferencable via :meth:`MarkedWord.deref`.
    """
    closed: set[str] = set()
    for symbol in symbols:
        if isinstance(symbol, Marker) and symbol.is_close:
            closed.add(symbol.var)
        elif isinstance(symbol, Ref) and symbol.var not in closed:
            return False
    return True


__all__ += ["parse_marked", "unmarked", "sequence_is_sequential"]
