"""Spans, span tuples, and span relations.

This module implements the basic data model of the document spanner
framework of Fagin, Kimelfeld, Reiss, and Vansummeren (J. ACM 2015) as
presented in the PODS'22 overview by Schmid and Schweikardt:

* a *document* ``D`` is a plain Python string over a finite alphabet;
* a *span* ``[i, j⟩`` of ``D`` is an interval with ``1 <= i <= j <= len(D)+1``
  representing the factor ``D[i-1:j-1]`` (spans are **1-based**, exactly as
  in the paper);
* an *(X, D)-tuple* (:class:`SpanTuple`) maps variables to spans — totally in
  the classical semantics of [9], or partially in the *schemaless* semantics
  of Maturana, Riveros, and Vrgoč [27];
* an *(X, D)-relation* (:class:`SpanRelation`) is a set of span tuples.

The table-rendering of :meth:`SpanRelation.to_table` reproduces the layout of
Example 1.1 of the paper, and :func:`fuse` implements the column-fusion
operator ``⨝_{λ→x}`` of Section 3.2 used to relate refl-spanners to core
spanners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import InvalidSpanError, SchemaError

__all__ = [
    "Span",
    "SpanTuple",
    "SpanRelation",
    "fuse",
    "fuse_tuple",
]


@dataclass(frozen=True, order=True)
class Span:
    """A span ``[start, end⟩`` with 1-based, half-open bounds.

    ``Span(2, 6)`` denotes the paper's ``[2, 6⟩``: the factor starting at the
    second position of the document and ending just before the sixth, i.e.
    ``doc[1:5]`` in Python indexing.

    Spans are ordered lexicographically by ``(start, end)``, which gives a
    deterministic enumeration order for relations.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not isinstance(self.start, int) or not isinstance(self.end, int):
            raise InvalidSpanError(f"span bounds must be ints, got {self!r}")
        if not 1 <= self.start <= self.end:
            raise InvalidSpanError(
                f"invalid span [{self.start}, {self.end}⟩: need 1 <= start <= end"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_offsets(cls, begin: int, stop: int) -> "Span":
        """Build a span from 0-based Python slice offsets ``doc[begin:stop]``."""
        return cls(begin + 1, stop + 1)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def offsets(self) -> tuple[int, int]:
        """The 0-based ``(begin, stop)`` slice offsets of this span."""
        return (self.start - 1, self.end - 1)

    def __len__(self) -> int:
        return self.end - self.start

    def is_empty(self) -> bool:
        """True for the empty span ``[i, i⟩``."""
        return self.start == self.end

    def extract(self, doc: str) -> str:
        """Return the factor of *doc* this span refers to.

        Raises :class:`InvalidSpanError` if the span does not fit in *doc*.
        """
        if self.end > len(doc) + 1:
            raise InvalidSpanError(
                f"span [{self.start}, {self.end}⟩ exceeds document of length {len(doc)}"
            )
        begin, stop = self.offsets
        return doc[begin:stop]

    def fits(self, doc: str) -> bool:
        """True if this span is a valid span of *doc*."""
        return self.end <= len(doc) + 1

    # ------------------------------------------------------------------
    # relative position predicates
    # ------------------------------------------------------------------
    def contains(self, other: "Span") -> bool:
        """True if *other* lies inside this span (possibly equal)."""
        return self.start <= other.start and other.end <= self.end

    def disjoint(self, other: "Span") -> bool:
        """True if the two spans share no position.

        Touching spans (``self.end == other.start``) are disjoint; an empty
        span on the boundary of another span is also disjoint from it.
        """
        return self.end <= other.start or other.end <= self.start

    def overlaps(self, other: "Span") -> bool:
        """True if the spans *properly* overlap.

        Properly overlapping means: not disjoint, and neither span contains
        the other.  This is exactly the configuration that makes a spanner
        non-hierarchical (Section 2.2 of the paper) and that refl-spanners
        forbid for string-equality selections (Section 3).
        """
        if self.disjoint(other):
            return False
        return not (self.contains(other) or other.contains(self))

    def shift(self, delta: int) -> "Span":
        """Return the span translated by *delta* positions."""
        return Span(self.start + delta, self.end + delta)

    def intersect(self, other: "Span") -> "Span | None":
        """The common part of two spans, or ``None`` if disjoint.

        Touching spans intersect in the empty span at the touch point.
        """
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        return Span(start, end) if start <= end else None

    def hull(self, other: "Span") -> "Span":
        """The smallest span containing both (the binary case of the
        fusion operator's span arithmetic, Section 3.2)."""
        return Span(min(self.start, other.start), max(self.end, other.end))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start},{self.end}⟩"


def _as_span_items(
    mapping: Mapping[str, Span | None] | Iterable[tuple[str, Span | None]],
) -> tuple[tuple[str, Span], ...]:
    """Normalise constructor input, dropping undefined (None) variables."""
    if isinstance(mapping, Mapping):
        items = mapping.items()
    else:
        items = list(mapping)
    cleaned: dict[str, Span] = {}
    for var, span in items:
        if span is None:
            continue
        if not isinstance(var, str) or not var:
            raise SchemaError(f"variable names must be non-empty strings, got {var!r}")
        if not isinstance(span, Span):
            raise InvalidSpanError(f"value for variable {var!r} is not a Span: {span!r}")
        if var in cleaned:
            raise SchemaError(f"duplicate variable {var!r} in span tuple")
        cleaned[var] = span
    return tuple(sorted(cleaned.items()))


@dataclass(frozen=True)
class SpanTuple:
    """An (X, D)-tuple: a (possibly partial) mapping from variables to spans.

    Variables mapped to ``None`` at construction time are treated as
    *undefined* — this realises the schemaless semantics of [27].  A tuple is
    *functional* with respect to a variable set X if it defines every variable
    of X (the classical total-function semantics of [9]).

    Instances are immutable and hashable; equality is by the set of
    (variable, span) bindings.
    """

    items: tuple[tuple[str, Span], ...]

    def __init__(
        self,
        mapping: Mapping[str, Span | None] | Iterable[tuple[str, Span | None]] = (),
    ) -> None:
        object.__setattr__(self, "items", _as_span_items(mapping))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, **bindings: Span | None) -> "SpanTuple":
        """Keyword-argument convenience constructor: ``SpanTuple.of(x=Span(1,2))``."""
        return cls(bindings)

    @classmethod
    def empty(cls) -> "SpanTuple":
        """The empty tuple (no variable defined)."""
        return cls(())

    # ------------------------------------------------------------------
    # mapping interface
    # ------------------------------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        """The set of *defined* variables."""
        return frozenset(var for var, _ in self.items)

    def __getitem__(self, var: str) -> Span:
        for name, span in self.items:
            if name == var:
                return span
        raise KeyError(var)

    def get(self, var: str) -> Span | None:
        """The span of *var*, or ``None`` if undefined (the paper's ``⊥``)."""
        for name, span in self.items:
            if name == var:
                return span
        return None

    def __contains__(self, var: str) -> bool:
        return any(name == var for name, _ in self.items)

    def __iter__(self) -> Iterator[tuple[str, Span]]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def as_dict(self) -> dict[str, Span]:
        """The defined bindings as a plain dict."""
        return dict(self.items)

    # ------------------------------------------------------------------
    # semantics helpers
    # ------------------------------------------------------------------
    def is_total_on(self, variables: Iterable[str]) -> bool:
        """True if every variable in *variables* is defined (functionality)."""
        defined = self.variables
        return all(var in defined for var in variables)

    def fits(self, doc: str) -> bool:
        """True if every defined span is a valid span of *doc*."""
        return all(span.fits(doc) for _, span in self.items)

    def contents(self, doc: str) -> dict[str, str]:
        """Map each defined variable to the factor of *doc* its span extracts."""
        return {var: span.extract(doc) for var, span in self.items}

    def satisfies_equality(self, doc: str, group: Iterable[str]) -> bool:
        """Decide the string-equality selection ``ς=_Z`` for this tuple.

        Under the schemaless convention of [38], only the *defined* variables
        of the group are constrained: all of them must extract (possibly
        different occurrences of) the same factor of *doc*.  Tuples in which
        at most one group variable is defined pass vacuously.
        """
        factors = [self[var].extract(doc) for var in group if var in self]
        return all(factor == factors[0] for factor in factors[1:])

    # ------------------------------------------------------------------
    # algebraic operations
    # ------------------------------------------------------------------
    def project(self, variables: Iterable[str]) -> "SpanTuple":
        """Restrict the tuple to *variables* (undefined ones stay undefined)."""
        keep = set(variables)
        return SpanTuple((var, span) for var, span in self.items if var in keep)

    def rename(self, renaming: Mapping[str, str]) -> "SpanTuple":
        """Rename variables according to *renaming* (missing keys unchanged)."""
        return SpanTuple(
            (renaming.get(var, var), span) for var, span in self.items
        )

    def compatible(self, other: "SpanTuple") -> bool:
        """True if the tuples agree on every variable defined in both."""
        mine = self.as_dict()
        return all(
            mine[var] == span for var, span in other.items if var in mine
        )

    def merge(self, other: "SpanTuple") -> "SpanTuple":
        """Natural-join merge of two compatible tuples.

        Raises :class:`SchemaError` if the tuples conflict on a shared
        variable.
        """
        if not self.compatible(other):
            raise SchemaError(f"tuples conflict on a shared variable: {self} vs {other}")
        merged = self.as_dict()
        merged.update(other.as_dict())
        return SpanTuple(merged)

    def sort_key(self, variables: tuple[str, ...]) -> tuple:
        """A deterministic sort key over the given variable order.

        Undefined variables sort before defined ones.
        """
        key = []
        for var in variables:
            span = self.get(var)
            if span is None:
                key.append((0, 0, 0))
            else:
                key.append((1, span.start, span.end))
        return tuple(key)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{var}={span}" for var, span in self.items)
        return f"({inner})"


class SpanRelation:
    """A set of span tuples over a fixed set of variables.

    The *schema* (``variables``) may include variables that are undefined in
    some tuples (schemaless semantics).  A relation is *functional* if every
    tuple defines every schema variable.

    Relations compare equal by (variable set, tuple set) and support the
    relational-algebra operations of the spanner framework.
    """

    __slots__ = ("_variables", "_tuples")

    def __init__(
        self,
        variables: Iterable[str],
        tuples: Iterable[SpanTuple] = (),
    ) -> None:
        self._variables: tuple[str, ...] = tuple(sorted(set(variables)))
        allowed = set(self._variables)
        collected = set()
        for tup in tuples:
            extra = tup.variables - allowed
            if extra:
                raise SchemaError(
                    f"tuple defines variables {sorted(extra)} outside schema {self._variables}"
                )
            collected.add(tup)
        self._tuples: frozenset[SpanTuple] = frozenset(collected)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[str, ...]:
        """The schema, as a sorted tuple of variable names."""
        return self._variables

    @property
    def tuples(self) -> frozenset[SpanTuple]:
        return self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[SpanTuple]:
        """Iterate tuples in a deterministic (sorted) order."""
        return iter(self.sorted())

    def __contains__(self, tup: SpanTuple) -> bool:
        return tup in self._tuples

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanRelation):
            return NotImplemented
        return self._variables == other._variables and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self._variables, self._tuples))

    def sorted(self) -> list[SpanTuple]:
        """The tuples as a list in deterministic order."""
        return sorted(self._tuples, key=lambda t: t.sort_key(self._variables))

    def is_functional(self) -> bool:
        """True if every tuple defines every schema variable (Section 2.2)."""
        return all(tup.is_total_on(self._variables) for tup in self._tuples)

    def is_hierarchical(self) -> bool:
        """True if no tuple assigns properly overlapping spans to two
        variables (the relation-level view of Section 2.2's notion)."""
        import itertools

        for tup in self._tuples:
            for (_, left), (_, right) in itertools.combinations(tup, 2):
                if left.overlaps(right):
                    return False
        return True

    # ------------------------------------------------------------------
    # relational algebra
    # ------------------------------------------------------------------
    def union(self, other: "SpanRelation") -> "SpanRelation":
        """Set union; schemas are merged (schemaless semantics)."""
        variables = set(self._variables) | set(other._variables)
        return SpanRelation(variables, self._tuples | other._tuples)

    def project(self, variables: Iterable[str]) -> "SpanRelation":
        """Projection ``π_Y``: keep only the given columns."""
        keep = set(variables)
        missing = keep - set(self._variables)
        if missing:
            raise SchemaError(f"cannot project onto unknown variables {sorted(missing)}")
        return SpanRelation(keep, (tup.project(keep) for tup in self._tuples))

    def natural_join(self, other: "SpanRelation") -> "SpanRelation":
        """Natural join ``⋈``: merge tuples that agree on shared defined variables."""
        variables = set(self._variables) | set(other._variables)
        joined = []
        for left in self._tuples:
            for right in other._tuples:
                if left.compatible(right):
                    joined.append(left.merge(right))
        return SpanRelation(variables, joined)

    def difference(self, other: "SpanRelation") -> "SpanRelation":
        """Set difference; requires equal schemas, mirroring
        :meth:`repro.automata.vset.VSetAutomaton.difference` so the
        materialized and compiled query strategies agree."""
        if self._variables != other._variables:
            raise SchemaError(
                "difference requires equal schemas: "
                f"{sorted(self._variables)} vs {sorted(other._variables)}"
            )
        return SpanRelation(self._variables, self._tuples - other._tuples)

    def select_equal(self, doc: str, group: Iterable[str]) -> "SpanRelation":
        """String-equality selection ``ς=_Z`` with respect to *doc*."""
        group = tuple(group)
        unknown = set(group) - set(self._variables)
        if unknown:
            raise SchemaError(f"equality selection on unknown variables {sorted(unknown)}")
        return SpanRelation(
            self._variables,
            (tup for tup in self._tuples if tup.satisfies_equality(doc, group)),
        )

    def rename(self, renaming: Mapping[str, str]) -> "SpanRelation":
        """Rename schema variables according to *renaming*."""
        variables = [renaming.get(var, var) for var in self._variables]
        if len(set(variables)) != len(variables):
            raise SchemaError("renaming collapses two variables")
        return SpanRelation(variables, (tup.rename(renaming) for tup in self._tuples))

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def to_table(self, undefined: str = "⊥") -> str:
        """Render the relation as a text table in the style of Example 1.1.

        Columns appear in sorted variable order; rows in deterministic span
        order; undefined entries are rendered as *undefined*.
        """
        header = list(self._variables)
        rows = []
        for tup in self.sorted():
            rows.append(
                [str(tup.get(var)) if var in tup else undefined for var in header]
            )
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(header[i].ljust(widths[i]) for i in range(len(header))),
            "-+-".join("-" * widths[i] for i in range(len(header))),
        ]
        for row in rows:
            lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)

    def to_dicts(self, doc: str | None = None) -> list[dict]:
        """Rows as plain dicts: ``{var: [start, end]}``, or — when *doc* is
        given — ``{var: {"span": [start, end], "content": str}}``.
        Undefined variables map to ``None``.  Deterministic row order."""
        rows = []
        for tup in self.sorted():
            row: dict = {}
            for var in self._variables:
                span = tup.get(var)
                if span is None:
                    row[var] = None
                elif doc is None:
                    row[var] = [span.start, span.end]
                else:
                    row[var] = {
                        "span": [span.start, span.end],
                        "content": span.extract(doc),
                    }
            rows.append(row)
        return rows

    def to_json(self, doc: str | None = None, indent: int | None = None) -> str:
        """The relation as a JSON array of rows (see :meth:`to_dicts`)."""
        import json

        return json.dumps(self.to_dicts(doc), indent=indent, ensure_ascii=False)

    def to_csv(self, doc: str | None = None) -> str:
        """The relation as CSV: one column per variable (``start:end`` or,
        with *doc*, the extracted content), empty cells for undefined."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self._variables)
        for tup in self.sorted():
            row = []
            for var in self._variables:
                span = tup.get(var)
                if span is None:
                    row.append("")
                elif doc is None:
                    row.append(f"{span.start}:{span.end}")
                else:
                    row.append(span.extract(doc))
            writer.writerow(row)
        return buffer.getvalue()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanRelation(variables={self._variables}, size={len(self)})"


def fuse_tuple(tup: SpanTuple, group: Iterable[str], new_var: str) -> SpanTuple:
    """The column-fusion operator ``⨝_{λ→x}`` of Section 3.2, on one tuple.

    The columns of the variables in *group* are replaced by a single new
    column *new_var* whose span stretches from the minimum left bound to the
    maximum right bound of the fused spans.  Undefined group variables are
    ignored; if no group variable is defined, *new_var* is undefined too.

    Example (from the paper): fusing ``x1, x3 → y`` in
    ``([1,3⟩, [2,6⟩, [3,7⟩)`` yields ``([1,7⟩, [2,6⟩)``.
    """
    group = set(group)
    spans = [tup[var] for var in group if var in tup]
    remaining = [(var, span) for var, span in tup if var not in group]
    if new_var in {var for var, _ in remaining}:
        raise SchemaError(f"fusion target {new_var!r} already defined in tuple")
    if spans:
        fused = Span(min(s.start for s in spans), max(s.end for s in spans))
        remaining.append((new_var, fused))
    return SpanTuple(remaining)


def fuse(relation: SpanRelation, group: Iterable[str], new_var: str) -> SpanRelation:
    """Lift :func:`fuse_tuple` to span relations (Section 3.2)."""
    group = tuple(group)
    unknown = set(group) - set(relation.variables)
    if unknown:
        raise SchemaError(f"fusion over unknown variables {sorted(unknown)}")
    variables = (set(relation.variables) - set(group)) | {new_var}
    return SpanRelation(
        variables, (fuse_tuple(tup, group, new_var) for tup in relation.tuples)
    )
