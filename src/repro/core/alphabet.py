"""Arc symbols: markers, references, and character predicates.

Document spanners operate on words over an *extended alphabet*
``Σ ∪ {x▷, ◁x : x ∈ X}`` (subword-marked words, Section 2.1 of the paper)
or ``Σ ∪ {x▷, ◁x, x : x ∈ X}`` (ref-words, Section 3).  This module defines
the non-Σ symbols:

* :class:`Marker` — an opening (``x▷``) or closing (``◁x``) marker;
* :class:`Ref` — a reference ``x`` used by refl-spanners;
* :class:`CharClass` — a (possibly complemented) set of characters, used on
  automaton arcs to represent character classes such as ``.`` or ``[a-z]``
  without enumerating the alphabet.

Plain document symbols are ordinary 1-character Python strings.

The module also fixes the **canonical total order** on markers used to
normalise consecutive markers (Option 1 of Section 2.2): all opening markers
first (sorted by variable name), then all closing markers (sorted by variable
name).  This order keeps empty spans ``[i, i⟩`` expressible, because ``x▷``
precedes ``◁x``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Union

from repro.errors import InvalidMarkedWordError

__all__ = [
    "Marker",
    "Open",
    "Close",
    "Ref",
    "CharClass",
    "DOT",
    "Symbol",
    "MarkerSet",
    "marker_sort_key",
    "sort_markers",
    "canonical_marker_set",
    "char_class",
    "symbol_matches",
]

OPEN = "open"
CLOSE = "close"


@dataclass(frozen=True, order=True)
class Marker:
    """A marker symbol ``x▷`` (kind ``"open"``) or ``◁x`` (kind ``"close"``).

    Note: dataclass ordering is *not* the canonical normalisation order; use
    :func:`marker_sort_key` for that.
    """

    kind: str
    var: str

    def __post_init__(self) -> None:
        if self.kind not in (OPEN, CLOSE):
            raise InvalidMarkedWordError(f"marker kind must be open/close, got {self.kind!r}")
        if not self.var:
            raise InvalidMarkedWordError("marker variable name must be non-empty")

    @property
    def is_open(self) -> bool:
        return self.kind == OPEN

    @property
    def is_close(self) -> bool:
        return self.kind == CLOSE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.var}▷" if self.is_open else f"◁{self.var}"


def Open(var: str) -> Marker:
    """The opening marker ``var▷``."""
    return Marker(OPEN, var)


def Close(var: str) -> Marker:
    """The closing marker ``◁var``."""
    return Marker(CLOSE, var)


@dataclass(frozen=True, order=True)
class Ref:
    """A reference symbol ``x``: a copy of whatever variable ``x`` extracted.

    Used in ref-words and refl-spanners (Section 3); equivalent in spirit to
    a backreference ``\\x`` of practical regex dialects.
    """

    var: str

    def __post_init__(self) -> None:
        if not self.var:
            raise InvalidMarkedWordError("reference variable name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"&{self.var}"


@dataclass(frozen=True)
class CharClass:
    """A character predicate: a finite set of characters or its complement.

    ``CharClass(frozenset("ab"))`` matches ``a`` or ``b``;
    ``CharClass(frozenset("ab"), negated=True)`` matches any character except
    ``a`` and ``b``; :data:`DOT` (negated empty set) matches every character.

    The class is closed under intersection, which is all the product
    constructions need.
    """

    chars: frozenset[str]
    negated: bool = False

    def __post_init__(self) -> None:
        for ch in self.chars:
            if not isinstance(ch, str) or len(ch) != 1:
                raise InvalidMarkedWordError(f"char class members must be 1-char strings: {ch!r}")

    def matches(self, ch: str) -> bool:
        """True if the predicate accepts character *ch*."""
        return (ch in self.chars) != self.negated

    def intersect(self, other: "CharClass") -> "CharClass":
        """The conjunction of two predicates, again as a :class:`CharClass`."""
        if not self.negated and not other.negated:
            return CharClass(self.chars & other.chars)
        if self.negated and other.negated:
            return CharClass(self.chars | other.chars, negated=True)
        positive, negative = (self, other) if not self.negated else (other, self)
        return CharClass(positive.chars - negative.chars)

    def is_empty(self) -> bool:
        """True if no character matches (only possible for positive classes)."""
        return not self.negated and not self.chars

    def witness(self, alphabet: Iterable[str] = ()) -> str | None:
        """Some character matching the predicate, or ``None`` if empty.

        For complemented classes the witness is drawn first from *alphabet*
        and then from a fallback pool of printable characters.
        """
        if not self.negated:
            return min(self.chars) if self.chars else None
        for ch in sorted(set(alphabet)):
            if ch not in self.chars:
                return ch
        pool = itertools.chain(
            "abcdefghijklmnopqrstuvwxyz0123456789",
            (chr(code) for code in range(32, 0x110000)),
        )
        for ch in pool:
            if ch not in self.chars:
                return ch
        return None  # pragma: no cover - pool is effectively inexhaustible

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = "".join(sorted(self.chars))
        return f"[^{inner}]" if self.negated else f"[{inner}]"


#: The predicate matching every character (the regex ``.``).
DOT = CharClass(frozenset(), negated=True)

#: A symbol on an automaton arc: a concrete character, a character class,
#: a marker, or a reference.
Symbol = Union[str, CharClass, Marker, Ref]

#: An extended-word letter: a set of markers read in one step (Section 2.2,
#: Option 2 / extended vset-automata of [10]).
MarkerSet = frozenset


def char_class(chars: Iterable[str], negated: bool = False) -> CharClass:
    """Convenience constructor for :class:`CharClass`."""
    return CharClass(frozenset(chars), negated)


def marker_sort_key(marker: Marker) -> tuple[int, str]:
    """Canonical normalisation order: opens (by variable), then closes."""
    return (0 if marker.is_open else 1, marker.var)


def sort_markers(markers: Iterable[Marker]) -> list[Marker]:
    """Sort markers into the canonical normalisation order."""
    return sorted(markers, key=marker_sort_key)


def canonical_marker_set(markers: Iterable[Marker]) -> frozenset[Marker]:
    """Validate a block of consecutive markers and return it as a set.

    A block is valid if no marker occurs twice.  (Whether each marker occurs
    at most once *globally* is checked at the word level.)
    """
    block = list(markers)
    as_set = frozenset(block)
    if len(as_set) != len(block):
        raise InvalidMarkedWordError(f"marker block repeats a marker: {block}")
    return as_set


def symbol_matches(symbol: Symbol, ch: str) -> bool:
    """True if the arc symbol *symbol* can read document character *ch*.

    Markers and references never match document characters.
    """
    if isinstance(symbol, str):
        return symbol == ch
    if isinstance(symbol, CharClass):
        return symbol.matches(ch)
    return False
