"""Command-line interface: ``python -m repro``.

Subcommands
-----------

``eval``      evaluate a spanner regex on a document and print the table::

    python -m repro eval '!x{(a|b)*}!y{b}!z{(a|b)*}' ababbab
    python -m repro eval '(.|\\n)*!user{[a-z]+}@!host{[a-z.]+}(.|\\n)*' --file mail.txt

``refl``      evaluate a refl-spanner regex (with ``&x`` references)::

    python -m repro refl '!x{(a|b)+}&x' abab

``compress``  build an SLP for a document and report compression stats::

    python -m repro compress --file corpus.txt --builder repair

``check``     model-check one span tuple, e.g. ``x=1:4 y=4:5``::

    python -m repro check '!x{a+}!y{b+}' aab x=1:3 y=3:4

``serve``     drive a concurrent query workload through the serving layer::

    python -m repro serve store.slpdb '!x{[a-z]+}' logs --requests 100 --workers 4
    python -m repro serve store.slpdb '!x{[a-z]+}' logs --fault-rate 0.3 --seed 7

    Opens (or builds, with ``--doc``) a store, registers the pattern,
    and pushes ``--requests`` queries through a
    :class:`~repro.serve.SpannerService` thread pool — optionally with
    seeded chaos faults injected into the compressed path — then prints
    completion/shed/degraded counts, latency percentiles, and the
    circuit-breaker state.

``db``        operate on a persistent, crash-safe SpannerDB store::

    python -m repro db store.slpdb add logs "error at line 3"
    python -m repro db store.slpdb edit head 'extract(doc(logs),1,6)'
    python -m repro db store.slpdb query '!x{[a-z]+}' logs --deadline 2.0
    python -m repro db store.slpdb bulk '!x{[a-z]+}' logs head --workers 4
    python -m repro db store.slpdb text head
    python -m repro db store.slpdb ls
    python -m repro db store.slpdb stats
    python -m repro db store.slpdb metrics
    python -m repro db store.slpdb query '!x{[a-z]+}' logs --trace out.jsonl

All ``db`` subcommands accept ``--deadline SECONDS``, ``--max-steps N``,
and ``--max-bytes N`` resource-governance flags; exceeding a limit exits
with a typed error instead of hanging.  ``--trace FILE`` switches
:mod:`repro.obs` on and writes the operation's spans/events as JSONL to
FILE (process-backend runs add one ``FILE.w<pid>.jsonl`` per pool
worker); the ``metrics`` action runs the store open (including any
journal recovery) under observability and prints the metrics registry —
``--format json`` for the raw snapshot, ``--format prom`` for Prometheus
text exposition.

``stream``    tail a live feed through the streaming ingestion layer::

    tail -f app.log | python -m repro stream '(.|\\n)*!x{error}(.|\\n)*'
    python -m repro stream '!x{[ab]+}' --file feed.txt --window-deadline 0.5
    python -m repro stream '!x{[ab]+}' --file feed.txt --fault-rate 0.3 --seed 7

    Reads chunks from a file or stdin (incremental UTF-8 decoding, so
    torn multi-byte sequences span chunk boundaries safely), pushes them
    through a :class:`~repro.serve.StreamSession` — bounded ingest queue
    with backpressure, per-window deadlines, circuit-broken rebuild
    fallback — and prints each window's result delta.  ``--fault-rate``/
    ``--tear-rate``/``--burst-rate`` enable the seeded feed-chaos
    schedule; ``--follow`` keeps tailing a growing file until interrupted.

``obs``       observability tooling::

    python -m repro obs stitch out.jsonl out.jsonl.w*.jsonl
    python -m repro obs stitch out.jsonl out.jsonl.w*.jsonl --trace 2e4e9f55a117f753

    ``stitch`` merges per-process trace files into one tree per trace
    id, ordered by start time (workers share the parent's monotonic
    epoch), with orphaned subtrees — a SIGKILLed worker's spans whose
    parent never closed — marked ``~``.
"""

from __future__ import annotations

import argparse
import sys

from repro import ReflSpanner, RegularSpanner, Span, SpanTuple
from repro.errors import InvalidSpanError, SpanlibError


def _document(args) -> str:
    if getattr(args, "file", None):
        with open(args.file, "r", encoding="utf-8") as handle:
            return handle.read()
    if args.doc is None:
        raise SystemExit("error: provide a document argument or --file")
    return args.doc


def _print_relation(relation, doc: str, args) -> None:
    fmt = getattr(args, "format", "table")
    with_contents = args.contents
    if fmt == "json":
        print(relation.to_json(doc if with_contents else None, indent=2))
    elif fmt == "csv":
        print(relation.to_csv(doc if with_contents else None), end="")
    elif with_contents:
        for tup in relation:
            print(tup.contents(doc))
    else:
        print(relation.to_table())


def _cmd_eval(args) -> int:
    doc = _document(args)
    spanner = RegularSpanner.from_regex(args.pattern)
    if args.limit:
        import itertools

        for tup in itertools.islice(spanner.enumerate(doc), args.limit):
            print(tup if not args.contents else tup.contents(doc))
        return 0
    _print_relation(spanner.evaluate(doc), doc, args)
    return 0


def _cmd_refl(args) -> int:
    doc = _document(args)
    spanner = ReflSpanner.from_regex(args.pattern)
    _print_relation(spanner.evaluate(doc), doc, args)
    return 0


def _cmd_compress(args) -> int:
    from repro.slp import SLP, balanced_node, lz78_node, repair_node

    doc = _document(args)
    builders = {"repair": repair_node, "lz78": lz78_node, "balanced": balanced_node}
    slp = SLP()
    node = builders[args.builder](slp, doc)
    size = slp.size(node)
    print(f"document length : {len(doc)}")
    print(f"slp nodes (|S|) : {size}")
    print(f"ratio           : {size / len(doc):.4f}")
    print(f"order (depth+1) : {slp.order(node)}")
    print(f"strongly balanced: {slp.is_strongly_balanced(node)}")
    return 0


def _binding_bound(text: str) -> int:
    """Parse one span bound as a plain ASCII decimal.

    Bare ``int()`` accepts every Unicode decimal-digit class (``٣``,
    superscripts, fullwidth digits) plus signs and surrounding
    whitespace — the same bug class PR 5 fixed in the regex parser's
    ``number()``; the CLI span-binding path must reject them with a typed
    error too, never parse ``x=٣:5`` as the span ``[3,5⟩``.
    """
    if not text or any(ch not in "0123456789" for ch in text):
        raise InvalidSpanError(f"span bounds must be ASCII digits, got {text!r}")
    return int(text)


def _parse_binding(text: str) -> tuple[str, Span]:
    try:
        var, bounds = text.split("=", 1)
        start, end = bounds.split(":", 1)
        return var, Span(_binding_bound(start), _binding_bound(end))
    except (ValueError, SpanlibError) as exc:
        raise SystemExit(f"error: bad span binding {text!r} (want var=start:end): {exc}")


def _cmd_check(args) -> int:
    doc = _document(args)
    spanner = RegularSpanner.from_regex(args.pattern)
    tup = SpanTuple(dict(_parse_binding(b) for b in args.bindings))
    verdict = spanner.model_check(doc, tup)
    print("MATCH" if verdict else "NO MATCH")
    return 0 if verdict else 1


def _budget(args):
    from repro.util import Budget, Deadline

    if args.deadline is None and args.max_steps is None and args.max_bytes is None:
        return None
    deadline = Deadline.after(args.deadline) if args.deadline is not None else None
    return Budget(
        deadline=deadline, max_steps=args.max_steps, max_bytes=args.max_bytes
    )


def _print_metrics(snapshot: dict) -> None:
    for name, value in snapshot["counters"].items():
        print(f"counter   {name} = {value}")
    for name, value in snapshot["gauges"].items():
        print(f"gauge     {name} = {value}")
    for name, summary in snapshot["histograms"].items():
        print(
            f"histogram {name} count={summary['count']} mean={summary['mean']:.0f} "
            f"p50={summary['p50']:.0f} p90={summary['p90']:.0f} p99={summary['p99']:.0f}"
        )


def _print_stats(stats: dict, indent: str = "") -> None:
    for key, value in stats.items():
        if isinstance(value, dict):
            print(f"{indent}{key}:")
            _print_stats(value, indent + "  ")
        else:
            print(f"{indent}{key}: {value}")


def _cmd_db(args) -> int:
    from repro import obs

    observing = args.trace is not None or args.action == "metrics"
    if observing:
        obs.configure(enabled=True, sink=args.trace)
    try:
        return _run_db_action(args)
    finally:
        if observing:
            # flush the JSONL sink and return the process to zero-cost mode
            obs.configure(enabled=False)


def _run_db_action(args) -> int:
    import os

    from repro import obs
    from repro.db import SpannerDB
    from repro.slp import parse_cde

    budget = _budget(args)
    store = SpannerDB.open(args.store) if os.path.exists(args.store) else SpannerDB()
    action = args.action

    if action == "add":
        if len(args.operands) != 2:
            raise SystemExit("usage: db STORE add NAME TEXT")
        with_save = store._journal_path is None
        store.add_document(args.operands[0], args.operands[1], budget)
        if with_save:
            store.save(args.store)
        print(f"added {args.operands[0]!r} ({store.document_length(args.operands[0])} chars)")
    elif action == "edit":
        if len(args.operands) != 2:
            raise SystemExit("usage: db STORE edit NEW_NAME CDE_EXPRESSION")
        with_save = store._journal_path is None
        store.edit(args.operands[0], parse_cde(args.operands[1]), budget)
        if with_save:
            store.save(args.store)
        print(f"edited -> {args.operands[0]!r} ({store.document_length(args.operands[0])} chars)")
    elif action == "query":
        if len(args.operands) == 1:
            # one operand = a spanner-algebra statement sequence (the
            # repro.query language); `expr ON name` picks the document,
            # defaulting to the store's only document when unambiguous
            from repro.query import QuerySession

            session = QuerySession(store, budget=budget)
            if len(store.documents()) == 1:
                session.default_document = store.documents()[0]
            for result in session.execute(args.operands[0], budget):
                if result.relation is not None:
                    print(result.relation.to_table())
        elif len(args.operands) == 2:
            store.register_spanner("__cli__", args.operands[0], budget)
            for tup in store.query("__cli__", args.operands[1], budget):
                print(tup)
        else:
            raise SystemExit(
                "usage: db STORE query PATTERN DOCUMENT"
                "  |  db STORE query \"<algebra expr [ON doc]>\""
            )
    elif action == "bulk":
        if len(args.operands) < 2:
            raise SystemExit("usage: db STORE bulk PATTERN DOCUMENT [DOCUMENT ...]")
        store.register_spanner("__cli__", args.operands[0], budget)
        relations = store.query_bulk(
            "__cli__",
            args.operands[1:],
            workers=args.workers,
            backend=args.backend,
            budget=budget,
        )
        for name, relation in relations.items():
            for tup in relation:
                print(f"{name}\t{tup}")
    elif action == "text":
        if len(args.operands) != 1:
            raise SystemExit("usage: db STORE text NAME")
        print(store.document_text(args.operands[0], budget=budget))
    elif action == "ls":
        for name in store.documents():
            print(f"{name}\t{store.document_length(name)}")
    elif action == "stats":
        _print_stats(store.stats())
    elif action == "metrics":
        fmt = getattr(args, "format", "text")
        if fmt == "json":
            import json

            print(json.dumps(obs.metrics().snapshot(), indent=2))
        elif fmt == "prom":
            print(obs.export_prometheus(), end="")
        else:
            _print_metrics(obs.metrics().snapshot())
    elif action == "save":
        store.save(args.store)
        print(f"snapshot written to {args.store}")
    else:
        raise SystemExit(f"unknown db action {action!r}")
    return 0


def _query_store(args):
    import os

    from repro.db import SpannerDB

    store_path = getattr(args, "store", None)
    if store_path and os.path.exists(store_path):
        store = SpannerDB.open(store_path)
    else:
        store = SpannerDB()
    if getattr(args, "doc", None) is not None:
        store.add_document("doc", args.doc)
    return store


def _cmd_query(args) -> int:
    from repro.query import QuerySession
    from repro.query.repl import run_script

    budget = _budget(args)
    store = _query_store(args)
    if args.file:
        return run_script(args.file, store, budget=budget)
    if not args.expression:
        raise SystemExit("error: provide statements or --file SCRIPT")
    session = QuerySession(store, budget=budget)
    if len(store.documents()) == 1:
        session.default_document = store.documents()[0]
    for result in session.execute(args.expression, budget):
        if args.plan and result.plan is not None:
            print(result.plan.describe())
        if result.relation is not None:
            print(result.relation.to_table())
            count = len(result.relation)
            print(f"({count} tuple{'s' if count != 1 else ''})")
    return 0


def _cmd_repl(args) -> int:
    from repro.query.repl import Repl

    store = _query_store(args)
    shell = Repl(store, budget=_budget(args))
    if len(store.documents()) == 1:
        shell.session.default_document = store.documents()[0]
    return shell.run()


def _cmd_stream(args) -> int:
    import codecs
    import threading
    import time as _time

    from repro.errors import OverloadedError
    from repro.serve import StreamSession, StreamSessionConfig
    from repro.stream import StreamConfig
    from repro.util import FeedChaos

    stream_config = StreamConfig(
        window_deadline=args.window_deadline,
        max_steps=args.max_steps,
        frontier_max_bytes=args.max_bytes,
    )
    chaos = None
    if args.fault_rate > 0.0 or args.tear_rate > 0.0 or args.burst_rate > 0.0:
        chaos = FeedChaos(
            seed=args.seed,
            fault_rate=args.fault_rate,
            tear_rate=args.tear_rate,
            burst_rate=args.burst_rate,
        )
    session_config = StreamSessionConfig(
        queue_limit=args.queue_limit,
        drain_deadline=args.drain_deadline,
        chaos=chaos,
    )

    def chunks():
        decoder = codecs.getincrementaldecoder("utf-8")("replace")
        handle = open(args.file, "rb") if args.file else sys.stdin.buffer
        try:
            while True:
                data = handle.read(args.chunk_bytes)
                if data:
                    text = decoder.decode(data)
                    if text:
                        yield text
                elif args.follow and args.file:
                    _time.sleep(0.2)
                else:
                    tail = decoder.decode(b"", final=True)
                    if tail:
                        yield tail
                    return
        finally:
            if args.file:
                handle.close()

    feed = chunks()
    if chaos is not None:
        feed = chaos.perturb(feed)

    session = StreamSession(args.pattern, session_config, stream_config).start()

    def produce():
        try:
            for chunk in feed:
                while True:
                    try:
                        session.feed(chunk)
                        break
                    except OverloadedError as exc:
                        _time.sleep(exc.retry_after)
        finally:
            session.close(args.drain_deadline)

    producer = threading.Thread(target=produce, name="stream-feed", daemon=True)
    producer.start()
    added = retracted = 0
    try:
        for window in session.results():
            added += len(window.added)
            retracted += len(window.retracted)
            flags = ""
            if window.rebuilt:
                flags += " [rebuilt]"
            if window.overrun:
                flags += f" [OVERRUN: {window.error}]"
            print(
                f"window {window.window}: +{len(window.added)} "
                f"-{len(window.retracted)} doc={window.document_chars}{flags}"
            )
            if args.tuples:
                for tup in window.added:
                    print(f"  + {tup}")
                for tup in window.retracted:
                    print(f"  - {tup}")
    except KeyboardInterrupt:
        session.close(args.drain_deadline)
    producer.join(timeout=args.drain_deadline + 1.0)
    stats = session.stats()
    print(f"windows   : {stats['windows']}")
    print(f"results   : {added} added, {retracted} retracted, "
          f"{stats['stream']['frontier_tuples']} final")
    print(f"overruns  : {stats['overruns']}")
    print(f"shed      : {stats['shed']}")
    print(f"rebuilds  : {stats['rebuilds']} (breaker {stats['breaker']['state']})")
    print(f"discarded : {stats['discarded']}")
    if stats["faults"]:
        print(f"faults    : {stats['faults']}")
    return 0


def _cmd_obs(args) -> int:
    from repro.obs.stitch import load_records, render_tree, stitch

    if args.action == "stitch":
        if not args.operands:
            raise SystemExit("usage: obs stitch FILE [FILE ...] [--trace ID]")
        records = load_records(args.operands)
        if args.trace is not None:
            roots = stitch(records, trace=args.trace)
            if not roots:
                raise SystemExit(f"error: no records for trace {args.trace!r}")
            print(f"trace {args.trace}")
            print(render_tree(roots, indent="  "))
            return 0
        traces = sorted(
            {r["trace"] for r in records if r.get("trace") is not None}
        )
        if not traces:
            # no trace ids at all (e.g. single-process files): render
            # everything as one tree rather than printing nothing
            roots = stitch(records)
            if not roots:
                raise SystemExit("error: no trace records found")
            print(render_tree(roots, indent="  "))
            return 0
        for position, trace_id in enumerate(traces):
            if position:
                print()
            print(f"trace {trace_id}")
            print(render_tree(stitch(records, trace=trace_id), indent="  "))
    else:
        raise SystemExit(f"unknown obs action {args.action!r}")
    return 0


def _cmd_serve(args) -> int:
    import os

    from repro import SpannerDB
    from repro.errors import OverloadedError, SpanlibError as _SpanlibError
    from repro.serve import ServeConfig, SpannerService, serve_queries

    if os.path.exists(args.store):
        store = SpannerDB.open(args.store)
    elif args.doc is not None:
        store = SpannerDB()
    else:
        raise SystemExit(f"error: no store at {args.store!r} (use --doc to build one)")
    if args.doc is not None and args.document not in store.documents():
        store.add_document(args.document, args.doc)
    if args.document not in store.documents():
        raise SystemExit(f"error: store has no document {args.document!r}")
    store.register_spanner("__serve__", args.pattern)

    config = ServeConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline,
        seed=args.seed,
    )
    injector = None
    chaos_scope = None
    if args.fault_rate > 0.0:
        from repro.slp.spanner_eval import SLPSpannerEvaluator
        from repro.util import ChaosInjector

        injector = ChaosInjector(seed=args.seed)
        chaos_scope = injector.chaos(
            SLPSpannerEvaluator,
            "enumerate",
            site="serve.enumerate",
            error_rate=args.fault_rate,
        )

    with SpannerService(store, config) as service:
        if chaos_scope is not None:
            chaos_scope.__enter__()
        try:
            outcomes = list(
                serve_queries(
                    service,
                    (("__serve__", args.document) for _ in range(args.requests)),
                    deadline=args.deadline,
                )
            )
        finally:
            if chaos_scope is not None:
                chaos_scope.__exit__(None, None, None)
        stats = service.stats()

    completed = [o for o in outcomes if not isinstance(o, _SpanlibError)]
    shed = sum(isinstance(o, OverloadedError) for o in outcomes)
    errors = len(outcomes) - len(completed) - shed
    degraded = sum(o.degraded for o in completed)
    print(f"requests  : {args.requests}")
    print(f"completed : {len(completed)}")
    print(f"shed      : {shed}")
    print(f"errors    : {errors}")
    print(f"degraded  : {degraded}")
    print(f"retries   : {stats['retries']}")
    print(f"p50       : {stats['p50_s'] * 1e3:.2f} ms")
    print(f"p99       : {stats['p99_s'] * 1e3:.2f} ms")
    print(f"breaker   : {stats['breaker']['state']} "
          f"(opened {stats['breaker']['times_opened']}x)")
    if injector is not None:
        print(f"faults    : {injector.fired()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="spanlib: document spanners from the command line",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    for name, handler, needs_limit in [
        ("eval", _cmd_eval, True),
        ("refl", _cmd_refl, False),
    ]:
        sub = commands.add_parser(name, help=f"{name} a spanner regex on a document")
        sub.add_argument("pattern", help="spanner regex (!x{...} captures, &x refs)")
        sub.add_argument("doc", nargs="?", help="the document (or use --file)")
        sub.add_argument("--file", help="read the document from a file")
        sub.add_argument(
            "--contents", action="store_true", help="print extracted strings, not spans"
        )
        sub.add_argument(
            "--format",
            choices=["table", "json", "csv"],
            default="table",
            help="output format for the relation",
        )
        if needs_limit:
            sub.add_argument(
                "--limit", type=int, default=0,
                help="stream only the first N tuples (constant-delay enumeration)",
            )
        sub.set_defaults(handler=handler)

    compress = commands.add_parser("compress", help="build an SLP and report stats")
    compress.add_argument("doc", nargs="?")
    compress.add_argument("--file")
    compress.add_argument(
        "--builder", choices=["repair", "lz78", "balanced"], default="repair"
    )
    compress.set_defaults(handler=_cmd_compress)

    check = commands.add_parser("check", help="model-check one span tuple")
    check.add_argument("pattern")
    check.add_argument("doc")
    check.add_argument("bindings", nargs="+", help="var=start:end (1-based spans)")
    check.set_defaults(handler=_cmd_check)

    serve = commands.add_parser(
        "serve", help="drive a concurrent query workload through repro.serve"
    )
    serve.add_argument("store", help="path of the snapshot file")
    serve.add_argument("pattern", help="spanner regex to register and query")
    serve.add_argument("document", help="document name to query")
    serve.add_argument(
        "--doc", default=None,
        help="document text (builds an in-memory store when STORE is absent)",
    )
    serve.add_argument("--requests", type=int, default=50, help="queries to issue")
    serve.add_argument("--workers", type=int, default=4, help="worker threads")
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission-control queue bound (requests beyond it are shed)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None,
        help="per-request wall-clock deadline in seconds",
    )
    serve.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="chaos: probability of an injected fault per compressed evaluation",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="seed for the chaos schedule and retry jitter",
    )
    serve.set_defaults(handler=_cmd_serve)

    db = commands.add_parser(
        "db", help="operate on a persistent, crash-safe SpannerDB store"
    )
    db.add_argument("store", help="path of the snapshot file")
    db.add_argument(
        "action",
        choices=["add", "edit", "query", "bulk", "text", "ls", "stats", "metrics", "save"],
    )
    db.add_argument("operands", nargs="*", help="action-specific operands")
    db.add_argument(
        "--workers", type=int, default=None,
        help="bulk: worker threads for the parallel preprocessing fan-out",
    )
    db.add_argument(
        "--backend",
        choices=["auto", "thread", "process", "serial"],
        default="auto",
        help="bulk: repro.parallel backend (auto picks the crash-isolated"
        " process pool on multi-core hosts, threads otherwise)",
    )
    db.add_argument(
        "--trace", default=None, metavar="FILE",
        help="enable repro.obs and write the operation's trace as JSONL"
        " (process-backend runs add one FILE.w<pid>.jsonl per pool worker;"
        " merge them with `obs stitch`)",
    )
    db.add_argument(
        "--format",
        choices=["text", "json", "prom"],
        default="text",
        help="metrics: output format (prom = Prometheus text exposition)",
    )
    db.add_argument(
        "--deadline", type=float, default=None,
        help="wall-clock budget in seconds for the operation",
    )
    db.add_argument(
        "--max-steps", type=int, default=None,
        help="abstract step budget for evaluation/editing",
    )
    db.add_argument(
        "--max-bytes", type=int, default=None,
        help="decompression-bomb guard: refuse to materialise more bytes",
    )
    db.set_defaults(handler=_cmd_db)

    def budget_flags(sub) -> None:
        sub.add_argument(
            "--deadline", type=float, default=None,
            help="wall-clock budget in seconds",
        )
        sub.add_argument(
            "--max-steps", type=int, default=None,
            help="abstract step budget for evaluation",
        )
        sub.add_argument(
            "--max-bytes", type=int, default=None,
            help="decompression-bomb guard: refuse to materialise more bytes",
        )

    query = commands.add_parser(
        "query", help="run spanner-algebra statements (LET/DOC/π/⋈/∪/\\)"
    )
    query.add_argument(
        "expression", nargs="?",
        help="statements to run, ';'-separated (or use --file)",
    )
    query.add_argument("-f", "--file", help="run a .rq script file")
    query.add_argument("--store", help="SpannerDB snapshot to query (optional)")
    query.add_argument(
        "--doc", default=None,
        help="ad-hoc document text, stored as 'doc' and selected by default",
    )
    query.add_argument(
        "--plan", action="store_true",
        help="print each query's chosen plan before its results",
    )
    budget_flags(query)
    query.set_defaults(handler=_cmd_query)

    repl = commands.add_parser("repl", help="interactive query shell")
    repl.add_argument("--store", help="SpannerDB snapshot to open (optional)")
    repl.add_argument(
        "--doc", default=None,
        help="ad-hoc document text, stored as 'doc' and selected by default",
    )
    budget_flags(repl)
    repl.set_defaults(handler=_cmd_repl)

    stream = commands.add_parser(
        "stream", help="tail a live feed through the streaming ingestion layer"
    )
    stream.add_argument("pattern", help="spanner regex to evaluate over the feed")
    stream.add_argument(
        "--file", default=None,
        help="read the feed from a file (default: stdin)",
    )
    stream.add_argument(
        "--follow", action="store_true",
        help="keep tailing a growing file until interrupted",
    )
    stream.add_argument(
        "--chunk-bytes", type=int, default=4096,
        help="read granularity in bytes (one window per chunk)",
    )
    stream.add_argument(
        "--tuples", action="store_true",
        help="print each window's added (+) and retracted (-) tuples",
    )
    stream.add_argument(
        "--queue-limit", type=int, default=64,
        help="bounded ingest queue; beyond it the producer backs off",
    )
    stream.add_argument(
        "--window-deadline", type=float, default=None,
        help="per-window wall-clock deadline in seconds (overruns ship partial)",
    )
    stream.add_argument(
        "--max-steps", type=int, default=None,
        help="abstract step budget per window",
    )
    stream.add_argument(
        "--max-bytes", type=int, default=None,
        help="bound on the dedup frontier's accounted bytes",
    )
    stream.add_argument(
        "--drain-deadline", type=float, default=5.0,
        help="seconds close() may spend draining queued windows",
    )
    stream.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="chaos: probability of an injected fault per window",
    )
    stream.add_argument(
        "--tear-rate", type=float, default=0.0,
        help="chaos: probability a chunk arrives torn in two",
    )
    stream.add_argument(
        "--burst-rate", type=float, default=0.0,
        help="chaos: probability chunks coalesce into a burst",
    )
    stream.add_argument(
        "--seed", type=int, default=0, help="seed for the feed-chaos schedule"
    )
    stream.set_defaults(handler=_cmd_stream)

    obs_cmd = commands.add_parser(
        "obs", help="observability tooling (stitch multi-process trace files)"
    )
    obs_cmd.add_argument("action", choices=["stitch"])
    obs_cmd.add_argument(
        "operands", nargs="*", metavar="FILE",
        help="JSONL trace files (the parent's sink plus its .w<pid> files)",
    )
    obs_cmd.add_argument(
        "--trace", default=None, metavar="ID",
        help="render only this trace id (default: every id found, in order)",
    )
    obs_cmd.set_defaults(handler=_cmd_obs)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except SpanlibError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
