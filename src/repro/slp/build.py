"""Building SLPs from plain text (grammar-based compression).

The paper points out that many practical dictionary compressors are covered
by SLPs and that computing a *smallest* SLP is NP-complete [3, 4]; practical
algorithms are approximate.  Provided here:

* :func:`balanced_node` — the trivial strongly balanced parse (no
  compression beyond hash-consing; size O(|D|)).  The baseline.
* :func:`repair_node` — Re-Pair-style global pair replacement: repeatedly
  replace the most frequent adjacent digram by a fresh nonterminal.  On
  repetitive inputs this reaches size O(log |D|)-ish.
* :func:`lz78_node` — the LZ78 parse folded into an SLP (each phrase is
  "previous phrase + one character", which *is* an SLP production).
* :func:`repeat_node` / :func:`power_node` — exact exponential compression
  ``w^k`` by binary exponentiation; the workhorse of the compressed-
  evaluation benchmarks (experiments C2/C3), where ``|S| = O(|w| + log k)``.
* :func:`fibonacci_node` — the Fibonacci-word SLP ``F_n = F_{n−1}·F_{n−2}``
  (pleasantly, strongly balanced by construction).

All builders return nodes whose derivation round-trips exactly; the test
suite checks this property with hypothesis.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import SLPError
from repro.slp.balance import concat_balanced
from repro.slp.slp import SLP

__all__ = [
    "balanced_node",
    "repair_node",
    "lz78_node",
    "repeat_node",
    "power_node",
    "fibonacci_node",
]


def balanced_node(slp: SLP, text: str) -> int:
    """A strongly balanced parse of *text* (mid-point recursion)."""
    if not text:
        raise SLPError("SLPs derive non-empty documents")

    def build(lo: int, hi: int) -> int:
        if hi - lo == 1:
            return slp.terminal(text[lo])
        mid = (lo + hi) // 2
        return slp.pair(build(lo, mid), build(mid, hi))

    return build(0, len(text))


def repair_node(slp: SLP, text: str) -> int:
    """Re-Pair-style compression of *text* into an SLP node.

    Repeatedly replaces the most frequent adjacent node pair (counted over
    non-overlapping, left-to-right occurrences) with a fresh pair node until
    no digram occurs twice; the remaining sequence is folded pairwise.
    The result is generally *not* strongly balanced — rebalance if needed.
    """
    if not text:
        raise SLPError("SLPs derive non-empty documents")
    sequence = [slp.terminal(ch) for ch in text]
    while len(sequence) > 1:
        counts: Counter[tuple[int, int]] = Counter()
        index = 0
        while index + 1 < len(sequence):
            digram = (sequence[index], sequence[index + 1])
            counts[digram] += 1
            # skip one position on aa-runs so occurrences never overlap
            if (
                index + 2 < len(sequence)
                and sequence[index + 1] == sequence[index]
                and sequence[index + 2] == sequence[index]
            ):
                index += 2
            else:
                index += 1
        if not counts:
            break
        digram, count = counts.most_common(1)[0]
        if count < 2:
            break
        replacement = slp.pair(*digram)
        rewritten: list[int] = []
        index = 0
        while index < len(sequence):
            if (
                index + 1 < len(sequence)
                and (sequence[index], sequence[index + 1]) == digram
            ):
                rewritten.append(replacement)
                index += 2
            else:
                rewritten.append(sequence[index])
                index += 1
        sequence = rewritten
    return _fold(slp, sequence)


def lz78_node(slp: SLP, text: str) -> int:
    """The LZ78 parse of *text* as an SLP node.

    LZ78 phrases have the shape "longest previously seen phrase + one fresh
    character", which maps directly onto SLP pair nodes.
    """
    if not text:
        raise SLPError("SLPs derive non-empty documents")
    # trie of phrases: maps (phrase_node_or_root, char) -> phrase node
    trie: dict[tuple[int | None, str], int] = {}
    phrases: list[int] = []
    current: int | None = None
    for ch in text:
        step = trie.get((current, ch))
        if step is not None:
            current = step
            continue
        node = slp.terminal(ch) if current is None else slp.pair(current, slp.terminal(ch))
        trie[(current, ch)] = node
        phrases.append(node)
        current = None
    if current is not None:  # unfinished phrase at the end of the text
        phrases.append(current)
    return _fold(slp, phrases)


def repeat_node(slp: SLP, node: int, times: int) -> int:
    """The node deriving ``D(node)`` repeated *times* (binary exponentiation).

    Uses balanced concatenation, so the result of repeating a strongly
    balanced node is strongly balanced, with O(log times) fresh nodes.
    """
    if times < 1:
        raise SLPError("repetition count must be >= 1")
    result: int | None = None
    power = node
    remaining = times
    while remaining:
        if remaining & 1:
            result = concat_balanced(slp, result, power)
        remaining >>= 1
        if remaining:
            power = slp.pair(power, power)
    assert result is not None
    return result


def power_node(slp: SLP, text: str, exponent: int) -> int:
    """``text^(2^exponent)`` with ``|S| = O(|text| + exponent)`` nodes."""
    node = balanced_node(slp, text)
    for _ in range(exponent):
        node = slp.pair(node, node)
    return node


def fibonacci_node(slp: SLP, n: int) -> int:
    """The n-th Fibonacci word (``F_1 = b``, ``F_2 = a``,
    ``F_n = F_{n−1}·F_{n−2}``) — an O(n)-node, strongly balanced SLP for a
    document of length ``fib(n)``."""
    if n < 1:
        raise SLPError("Fibonacci index must be >= 1")
    previous = slp.terminal("b")
    if n == 1:
        return previous
    current = slp.terminal("a")
    for _ in range(n - 2):
        previous, current = current, slp.pair(current, previous)
    return current


def _fold(slp: SLP, nodes: list[int]) -> int:
    """Fold a sequence of nodes pairwise into a single node."""
    if not nodes:
        raise SLPError("cannot fold an empty sequence")
    while len(nodes) > 1:
        folded = [
            slp.pair(nodes[i], nodes[i + 1]) for i in range(0, len(nodes) - 1, 2)
        ]
        if len(nodes) % 2:
            folded.append(nodes[-1])
        nodes = folded
    return nodes[0]
