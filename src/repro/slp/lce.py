"""Longest common extensions and suffix comparison on SLPs.

More of footnote 5's "algorithmics on compressed strings": with per-node
Karp–Rabin machinery we can fingerprint arbitrary *factors* of a compressed
document in O(depth) — no decompression — which unlocks:

* :func:`factor_fingerprint` — hash of ``D(node)[i:j]``;
* :func:`longest_common_extension` — the length of the longest common
  prefix of two suffixes (possibly of different documents), by binary
  search over fingerprints: O(depth · log |D|) per query;
* :func:`compare_suffixes` — lexicographic comparison of two suffixes in
  the same bound (LCE + one character access).

These are the building blocks of compressed suffix sorting and approximate
matching; here they are exercised by the test suite as further evidence
that the SLP substrate is a complete compressed-strings toolbox.
"""

from __future__ import annotations

from repro.errors import SLPError
from repro.slp.access import Fingerprinter, char_at
from repro.slp.slp import SLP

__all__ = ["FactorHasher", "longest_common_extension", "compare_suffixes"]


class FactorHasher:
    """Karp–Rabin fingerprints of arbitrary factors of SLP documents.

    Built on prefix fingerprints: ``hash(D[0:k])`` is computed by walking
    one root-to-leaf path (O(depth)), reusing whole-node fingerprints of
    the full subtrees hanging off the path.  Factor hashes combine two
    prefix hashes.
    """

    def __init__(self, slp: SLP) -> None:
        self.slp = slp
        self._nodes = Fingerprinter(slp)
        self._prime = Fingerprinter.PRIME
        self._base = Fingerprinter.BASE
        self._prefix_cache: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def prefix_fingerprint(self, node: int, length: int) -> int:
        """Hash of ``D(node)[0:length]`` in O(depth)."""
        total = self.slp.length(node)
        if not 0 <= length <= total:
            raise SLPError(f"prefix length {length} outside document of length {total}")
        key = (node, length)
        cached = self._prefix_cache.get(key)
        if cached is not None:
            return cached
        value = 0
        remaining = length
        current = node
        while remaining > 0:
            if self.slp.is_terminal(current):
                value = (
                    value * self._base + ord(self.slp.char(current))
                ) % self._prime
                remaining = 0
                break
            left, right = self.slp.children(current)
            left_length = self.slp.length(left)
            if remaining >= left_length:
                # absorb the whole left child, continue in the right
                value = (
                    value * pow(self._base, left_length, self._prime)
                    + self._nodes.fingerprint(left)
                ) % self._prime
                remaining -= left_length
                current = right
            else:
                current = left
        self._prefix_cache[key] = value
        return value

    def factor_fingerprint(self, node: int, begin: int, end: int) -> int:
        """Hash of ``D(node)[begin:end]`` (0-based slice offsets)."""
        if not 0 <= begin <= end <= self.slp.length(node):
            raise SLPError(f"bad factor range [{begin}, {end})")
        full = self.prefix_fingerprint(node, end)
        head = self.prefix_fingerprint(node, begin)
        shift = pow(self._base, end - begin, self._prime)
        return (full - head * shift) % self._prime

    def factors_equal(
        self, node_a: int, begin_a: int, node_b: int, begin_b: int, length: int
    ) -> bool:
        """Probabilistic equality of two equal-length factors."""
        return self.factor_fingerprint(
            node_a, begin_a, begin_a + length
        ) == self.factor_fingerprint(node_b, begin_b, begin_b + length)


def longest_common_extension(
    slp: SLP,
    node_a: int,
    offset_a: int,
    node_b: int,
    offset_b: int,
    hasher: FactorHasher | None = None,
) -> int:
    """Length of the longest common prefix of ``D(node_a)[offset_a:]`` and
    ``D(node_b)[offset_b:]`` — binary search over factor fingerprints."""
    hasher = hasher if hasher is not None else FactorHasher(slp)
    limit = min(
        slp.length(node_a) - offset_a,
        slp.length(node_b) - offset_b,
    )
    if limit < 0:
        raise SLPError("suffix offset outside the document")
    low, high = 0, limit
    while low < high:
        middle = (low + high + 1) // 2
        if hasher.factors_equal(node_a, offset_a, node_b, offset_b, middle):
            low = middle
        else:
            high = middle - 1
    return low


def compare_suffixes(
    slp: SLP,
    node_a: int,
    offset_a: int,
    node_b: int,
    offset_b: int,
    hasher: FactorHasher | None = None,
) -> int:
    """Lexicographic comparison of two suffixes: −1, 0, or +1.

    One LCE query plus one random access, all on the compressed form.
    """
    lce = longest_common_extension(slp, node_a, offset_a, node_b, offset_b, hasher)
    rest_a = slp.length(node_a) - offset_a - lce
    rest_b = slp.length(node_b) - offset_b - lce
    if rest_a == 0 and rest_b == 0:
        return 0
    if rest_a == 0:
        return -1
    if rest_b == 0:
        return 1
    ch_a = char_at(slp, node_a, offset_a + lce)
    ch_b = char_at(slp, node_b, offset_b + lce)
    return -1 if ch_a < ch_b else 1
