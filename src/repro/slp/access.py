"""Algorithmics on compressed strings: random access, extraction,
fingerprint equality (the toolbox Section 4's footnote 5 alludes to).

All routines work *without decompressing*: random access costs O(depth)
(= O(log |D|) on balanced SLPs), extraction O(depth + output), and node
equality is decided by Karp–Rabin fingerprints maintained per node.
"""

from __future__ import annotations

from repro.errors import SLPError
from repro.slp.slp import SLP

__all__ = ["char_at", "extract", "Fingerprinter"]


def char_at(slp: SLP, node: int, position: int) -> str:
    """The character ``D(node)[position]`` (0-based), in O(depth)."""
    length = slp.length(node)
    if not 0 <= position < length:
        raise SLPError(f"position {position} outside document of length {length}")
    while not slp.is_terminal(node):
        left, right = slp.children(node)
        left_length = slp.length(left)
        if position < left_length:
            node = left
        else:
            node = right
            position -= left_length
    return slp.char(node)


def extract(slp: SLP, node: int, begin: int, end: int) -> str:
    """The factor ``D(node)[begin:end]`` in O(depth + (end − begin)).

    This is the read-only sibling of the CDE ``extract`` operation: it
    materialises the factor as a string instead of adding a node.
    """
    length = slp.length(node)
    if not 0 <= begin <= end <= length:
        raise SLPError(f"bad extract range [{begin}, {end}) for length {length}")
    out: list[str] = []
    target = end - begin

    def walk(current: int, offset: int) -> None:
        """Append D(current)[offset : offset + remaining_needed]."""
        stack: list[tuple[int, int]] = [(current, offset)]
        while stack and len(out) < target:
            node_id, skip = stack.pop()
            node_length = slp.length(node_id)
            if skip >= node_length:
                continue
            if slp.is_terminal(node_id):
                out.append(slp.char(node_id))
                continue
            left, right = slp.children(node_id)
            left_length = slp.length(left)
            # push right first so the left side is expanded first
            if skip < left_length:
                stack.append((right, 0))
                stack.append((left, skip))
            else:
                stack.append((right, skip - left_length))

    walk(node, begin)
    return "".join(out)


class Fingerprinter:
    """Karp–Rabin fingerprints of SLP nodes, with per-node memoisation.

    ``fingerprint(pair(A, B)) = fp(A) · base^|D(B)| + fp(B)  (mod p)`` with
    a 61-bit Mersenne prime, so two nodes with equal fingerprints *and*
    equal lengths derive equal documents except with probability
    ≈ |D| / 2^61.  ``base^|D(B)|`` is computed by modular exponentiation,
    so exponentially long documents are fine.
    """

    PRIME = (1 << 61) - 1
    BASE = 1_000_003

    def __init__(self, slp: SLP) -> None:
        self.slp = slp
        self._cache: dict[int, int] = {}

    def fingerprint(self, node: int) -> int:
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        # iterative bottom-up over the reachable sub-DAG
        for current in self.slp.topological(node):
            if current in self._cache:
                continue
            if self.slp.is_terminal(current):
                value = ord(self.slp.char(current)) % self.PRIME
            else:
                left, right = self.slp.children(current)
                shift = pow(self.BASE, self.slp.length(right), self.PRIME)
                value = (
                    self._cache[left] * shift + self._cache[right]
                ) % self.PRIME
            self._cache[current] = value
        return self._cache[node]

    def equal(self, left: int, right: int) -> bool:
        """Probabilistic document equality of two nodes (no decompression)."""
        if left == right:
            return True
        if self.slp.length(left) != self.slp.length(right):
            return False
        return self.fingerprint(left) == self.fingerprint(right)
