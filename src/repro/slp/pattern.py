"""Compressed pattern matching: occurrences of a short pattern in an
SLP-compressed document, without decompression.

Footnote 5 of the paper observes that "most basic string analysis tasks can
be performed directly on SLPs"; this module implements the textbook
instance.  For a pattern P of length m, each node A stores

* ``pref(A)`` / ``suf(A)`` — the first/last ``min(|D(A)|, m−1)`` characters
  of ``D(A)`` (enough context to detect boundary-crossing matches), and
* ``count(A)`` — the number of (possibly overlapping) occurrences of P.

For a pair node, occurrences either lie inside a child (counted there,
shared across the DAG) or cross the boundary — detectable inside the
``suf(left)·pref(right)`` window of length ≤ 2(m−1).  Total time
O(|S|·m), i.e. logarithmic in |D| for well-compressed documents.

:meth:`CompressedPatternMatcher.occurrences` additionally streams match
*positions* lazily by descending only into subtrees that contain matches.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import SLPError
from repro.slp.slp import SLP

__all__ = ["CompressedPatternMatcher"]


def _overlapping_count(text: str, pattern: str) -> int:
    count = 0
    start = text.find(pattern)
    while start != -1:
        count += 1
        start = text.find(pattern, start + 1)
    return count


class CompressedPatternMatcher:
    """Occurrence counting and location for one fixed pattern."""

    def __init__(self, pattern: str) -> None:
        if not pattern:
            raise SLPError("pattern must be non-empty")
        self.pattern = pattern
        #: (slp.serial, node) -> (count, prefix, suffix)
        self._data: dict[tuple[int, int], tuple[int, str, str]] = {}

    # ------------------------------------------------------------------
    def _node_data(self, slp: SLP, node: int) -> tuple[int, str, str]:
        key = (slp.serial, node)
        cached = self._data.get(key)
        if cached is not None:
            return cached
        m = len(self.pattern)
        keep = m - 1
        for current in slp.topological(node):
            current_key = (slp.serial, current)
            if current_key in self._data:
                continue
            if slp.is_terminal(current):
                ch = slp.char(current)
                count = 1 if ch == self.pattern else 0
                context = ch[:keep]
                self._data[current_key] = (count, context, context)
                continue
            left, right = slp.children(current)
            count_l, pref_l, suf_l = self._data[(slp.serial, left)]
            count_r, pref_r, suf_r = self._data[(slp.serial, right)]
            window = suf_l + pref_r
            crossing = sum(
                1
                for i in range(len(window) - m + 1)
                if i < len(suf_l) < i + m and window.startswith(self.pattern, i)
            )
            count = count_l + count_r + crossing
            if slp.length(left) >= keep:
                prefix = pref_l
            else:
                prefix = (pref_l + pref_r)[:keep]
            if slp.length(right) >= keep:
                suffix = suf_r
            else:
                suffix = (suf_l + suf_r)[-keep:] if keep else ""
            self._data[current_key] = (count, prefix, suffix)
        return self._data[key]

    # ------------------------------------------------------------------
    def count(self, slp: SLP, node: int) -> int:
        """Overlapping occurrences of the pattern in ``D(node)``."""
        return self._node_data(slp, node)[0]

    def contains(self, slp: SLP, node: int) -> bool:
        return self.count(slp, node) > 0

    def occurrences(self, slp: SLP, node: int) -> Iterator[int]:
        """Stream the 0-based start offsets of all occurrences, in order.

        Descends only into subtrees with matches; boundary-crossing matches
        are found in the suf/pref window, so a single occurrence costs
        O(depth · m).  Note: offsets are plain ints even when |D| is
        astronomic.
        """
        self._node_data(slp, node)
        m = len(self.pattern)
        serial = slp.serial
        # in-order traversal as an explicit LIFO (an SLP of depth d must
        # not consume d interpreter stack frames): left matches, crossing
        # matches, right matches are each emitted in increasing position
        # order, so frames are pushed right-to-left
        _DESCEND, _CROSSING = 0, 1
        stack: list[tuple[int, int, int]] = [(_DESCEND, node, 0)]
        while stack:
            kind, current, offset = stack.pop()
            left_right = None if slp.is_terminal(current) else slp.children(current)
            if kind == _CROSSING:
                left, right = left_right
                left_length = slp.length(left)
                _, _, suf_l = self._data[(serial, left)]
                _, pref_r, _ = self._data[(serial, right)]
                window = suf_l + pref_r
                window_start = offset + left_length - len(suf_l)
                for i in range(len(window) - m + 1):
                    if i < len(suf_l) < i + m and window.startswith(
                        self.pattern, i
                    ):
                        yield window_start + i
                continue
            count, _, _ = self._data[(serial, current)]
            if count == 0:
                continue
            if left_right is None:
                yield offset  # pattern is the single character
                continue
            left, right = left_right
            stack.append((_DESCEND, right, offset + slp.length(left)))
            stack.append((_CROSSING, current, offset))
            stack.append((_DESCEND, left, offset))
