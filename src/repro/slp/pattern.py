"""Compressed pattern matching: occurrences of a short pattern in an
SLP-compressed document, without decompression.

Footnote 5 of the paper observes that "most basic string analysis tasks can
be performed directly on SLPs"; this module implements the textbook
instance.  For a pattern P of length m, each node A stores

* ``pref(A)`` / ``suf(A)`` — the first/last ``min(|D(A)|, m−1)`` characters
  of ``D(A)`` (enough context to detect boundary-crossing matches), and
* ``count(A)`` — the number of (possibly overlapping) occurrences of P.

For a pair node, occurrences either lie inside a child (counted there,
shared across the DAG) or cross the boundary — detectable inside the
``suf(left)·pref(right)`` window of length ≤ 2(m−1).  Total time
O(|S|·m), i.e. logarithmic in |D| for well-compressed documents.

:meth:`CompressedPatternMatcher.occurrences` additionally streams match
*positions* lazily by descending only into subtrees that contain matches.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import SLPError
from repro.slp.slp import SLP

__all__ = ["CompressedPatternMatcher"]


def _overlapping_count(text: str, pattern: str) -> int:
    count = 0
    start = text.find(pattern)
    while start != -1:
        count += 1
        start = text.find(pattern, start + 1)
    return count


class CompressedPatternMatcher:
    """Occurrence counting and location for one fixed pattern."""

    def __init__(self, pattern: str) -> None:
        if not pattern:
            raise SLPError("pattern must be non-empty")
        self.pattern = pattern
        #: slp.serial -> node -> (count, prefix, suffix)
        self._arena_data: dict[int, dict[int, tuple[int, str, str]]] = {}
        #: slp.serial -> node ids whose whole subtree is cached
        self._sealed: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    def cached_nodes(self, serial: int | None = None) -> int:
        """Cached node count — for one arena, or overall (O(1) per arena)."""
        if serial is not None:
            return len(self._arena_data.get(serial, ()))
        return sum(len(arena) for arena in self._arena_data.values())

    def is_sealed(self, slp: SLP, node: int) -> bool:
        """Whether *node*'s entire subtree is known cached (O(1))."""
        return node in self._sealed.get(slp.serial, ())

    def invalidate_from(self, slp: SLP, mark: int) -> int:
        """Drop cached data for nodes of *slp* with id ``>= mark`` (rollback
        reuses those ids); sealed ids at or above the mark are unsealed."""
        arena = self._arena_data.get(slp.serial)
        if not arena:
            return 0
        doomed = [node for node in arena if node >= mark]
        for node in doomed:
            del arena[node]
        sealed = self._sealed.get(slp.serial)
        if sealed:
            self._sealed[slp.serial] = {n for n in sealed if n < mark}
        return len(doomed)

    def _node_data(self, slp: SLP, node: int) -> tuple[int, str, str]:
        serial = slp.serial
        sealed = self._sealed.setdefault(serial, set())
        arena = self._arena_data.setdefault(serial, {})
        if node in sealed:
            return arena[node]
        m = len(self.pattern)
        keep = m - 1
        walked, _skipped = slp.frontier(node, sealed)
        for current in walked:
            if current in arena:
                continue
            if slp.is_terminal(current):
                ch = slp.char(current)
                count = 1 if ch == self.pattern else 0
                context = ch[:keep]
                arena[current] = (count, context, context)
                continue
            left, right = slp.children(current)
            count_l, pref_l, suf_l = arena[left]
            count_r, pref_r, suf_r = arena[right]
            window = suf_l + pref_r
            crossing = sum(
                1
                for i in range(len(window) - m + 1)
                if i < len(suf_l) < i + m and window.startswith(self.pattern, i)
            )
            count = count_l + count_r + crossing
            if slp.length(left) >= keep:
                prefix = pref_l
            else:
                prefix = (pref_l + pref_r)[:keep]
            if slp.length(right) >= keep:
                suffix = suf_r
            else:
                suffix = (suf_l + suf_r)[-keep:] if keep else ""
            arena[current] = (count, prefix, suffix)
        # Seal bottom-up over the walked order; pruned children were sealed
        # already, so sealing propagates all the way to the fresh root.
        for current in walked:
            if current not in arena:
                continue
            if slp.is_terminal(current):
                sealed.add(current)
            else:
                left, right = slp.children(current)
                if left in sealed and right in sealed:
                    sealed.add(current)
        return arena[node]

    # ------------------------------------------------------------------
    def count(self, slp: SLP, node: int) -> int:
        """Overlapping occurrences of the pattern in ``D(node)``."""
        return self._node_data(slp, node)[0]

    def contains(self, slp: SLP, node: int) -> bool:
        return self.count(slp, node) > 0

    def occurrences(self, slp: SLP, node: int) -> Iterator[int]:
        """Stream the 0-based start offsets of all occurrences, in order.

        Descends only into subtrees with matches; boundary-crossing matches
        are found in the suf/pref window, so a single occurrence costs
        O(depth · m).  Note: offsets are plain ints even when |D| is
        astronomic.
        """
        self._node_data(slp, node)
        m = len(self.pattern)
        data = self._arena_data[slp.serial]
        # in-order traversal as an explicit LIFO (an SLP of depth d must
        # not consume d interpreter stack frames): left matches, crossing
        # matches, right matches are each emitted in increasing position
        # order, so frames are pushed right-to-left
        _DESCEND, _CROSSING = 0, 1
        stack: list[tuple[int, int, int]] = [(_DESCEND, node, 0)]
        while stack:
            kind, current, offset = stack.pop()
            left_right = None if slp.is_terminal(current) else slp.children(current)
            if kind == _CROSSING:
                left, right = left_right
                left_length = slp.length(left)
                _, _, suf_l = data[left]
                _, pref_r, _ = data[right]
                window = suf_l + pref_r
                window_start = offset + left_length - len(suf_l)
                for i in range(len(window) - m + 1):
                    if i < len(suf_l) < i + m and window.startswith(
                        self.pattern, i
                    ):
                        yield window_start + i
                continue
            count, _, _ = data[current]
            if count == 0:
                continue
            if left_right is None:
                yield offset  # pattern is the single character
                continue
            left, right = left_right
            stack.append((_DESCEND, right, offset + slp.length(left)))
            stack.append((_CROSSING, current, offset))
            stack.append((_DESCEND, left, offset))
