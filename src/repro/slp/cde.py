"""Complex Document Editing (CDE) — paper Section 4.3.

A CDE-expression builds a new document out of the documents of an
SLP-represented database, using the algebra

* ``concat(D, D′)``
* ``extract(D, i, j)`` — the factor from position i to j (1-based, inclusive)
* ``delete(D, i, j)``
* ``insert(D, D′, k)`` — D′ begins at position k of the result
* ``copy(D, i, j, k)`` — extract then insert into the same document

(the last three are definable from the first two, and are implemented that
way).  Two semantics are provided:

* :func:`eval_cde` — the specification: plain-string evaluation;
* :func:`apply_cde` — evaluation *directly on the strongly balanced SLP*:
  every operation reduces to balanced splits and concats, costing
  ``O(log d)`` fresh nodes per operation, so a whole expression φ costs
  ``O(|φ| · log d)`` — the paper's headline bound for [40].

:meth:`Editor.apply` additionally stores the result as a new database
document and re-uses the incremental matrices of the compressed-evaluation
machinery, so the updated document can be queried immediately without
re-preprocessing (experiment C4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CDEError
from repro.slp.balance import (
    assert_strongly_balanced,
    concat_balanced,
    rebalance,
    split_balanced,
)
from repro.slp.slp import SLP, DocumentDatabase

__all__ = [
    "CDE",
    "Doc",
    "Concat",
    "Extract",
    "Delete",
    "Insert",
    "Copy",
    "eval_cde",
    "apply_cde",
    "format_cde",
    "parse_cde",
    "Editor",
]


class CDE:
    """Base class of CDE-expression nodes."""

    def size(self) -> int:
        """The size |φ| of the expression (number of operator nodes)."""
        return 1 + sum(child.size() for child in self._children())

    def _children(self) -> tuple["CDE", ...]:
        return ()


@dataclass(frozen=True)
class Doc(CDE):
    """A database document, by name."""

    name: str


@dataclass(frozen=True)
class Concat(CDE):
    left: CDE
    right: CDE

    def _children(self) -> tuple[CDE, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Extract(CDE):
    """``extract(D, i, j)``: positions i..j inclusive, 1-based, i ≤ j."""

    inner: CDE
    i: int
    j: int

    def _children(self) -> tuple[CDE, ...]:
        return (self.inner,)


@dataclass(frozen=True)
class Delete(CDE):
    """``delete(D, i, j)``: remove positions i..j inclusive."""

    inner: CDE
    i: int
    j: int

    def _children(self) -> tuple[CDE, ...]:
        return (self.inner,)


@dataclass(frozen=True)
class Insert(CDE):
    """``insert(D, D′, k)``: D′ begins at position k (1 ≤ k ≤ |D| + 1)."""

    target: CDE
    source: CDE
    k: int

    def _children(self) -> tuple[CDE, ...]:
        return (self.target, self.source)


@dataclass(frozen=True)
class Copy(CDE):
    """``copy(D, i, j, k)``: paste the factor i..j at position k."""

    inner: CDE
    i: int
    j: int
    k: int

    def _children(self) -> tuple[CDE, ...]:
        return (self.inner,)


def _check_range(i: int, j: int, length: int) -> None:
    if not 1 <= i <= j <= length:
        raise CDEError(f"factor range [{i}, {j}] invalid for length {length}")


def _check_insert(k: int, length: int) -> None:
    if not 1 <= k <= length + 1:
        raise CDEError(f"insert position {k} invalid for length {length}")


def eval_cde(expr: CDE, documents: dict[str, str]) -> str:
    """The string semantics ``eval(φ)`` (the specification)."""
    if isinstance(expr, Doc):
        try:
            return documents[expr.name]
        except KeyError:
            raise CDEError(f"no document named {expr.name!r}") from None
    if isinstance(expr, Concat):
        return eval_cde(expr.left, documents) + eval_cde(expr.right, documents)
    if isinstance(expr, Extract):
        doc = eval_cde(expr.inner, documents)
        _check_range(expr.i, expr.j, len(doc))
        return doc[expr.i - 1: expr.j]
    if isinstance(expr, Delete):
        doc = eval_cde(expr.inner, documents)
        _check_range(expr.i, expr.j, len(doc))
        return doc[: expr.i - 1] + doc[expr.j:]
    if isinstance(expr, Insert):
        doc = eval_cde(expr.target, documents)
        other = eval_cde(expr.source, documents)
        _check_insert(expr.k, len(doc))
        return doc[: expr.k - 1] + other + doc[expr.k - 1:]
    if isinstance(expr, Copy):
        doc = eval_cde(expr.inner, documents)
        _check_range(expr.i, expr.j, len(doc))
        _check_insert(expr.k, len(doc))
        factor = doc[expr.i - 1: expr.j]
        return doc[: expr.k - 1] + factor + doc[expr.k - 1:]
    raise CDEError(f"unknown CDE node {expr!r}")


def apply_cde(expr: CDE, db: DocumentDatabase, budget=None) -> int:
    """Evaluate φ directly on the strongly balanced SLP of *db*.

    Returns the node deriving ``eval(φ)``; the database is untouched except
    for fresh nodes added to the arena.  Every operation costs O(log d)
    fresh nodes (d as in the paper's bound).  Raises :class:`CDEError` if
    the expression evaluates to the empty document (SLPs derive non-empty
    strings) or on out-of-range positions.

    An optional :class:`~repro.util.Budget` is charged one step per
    operator and guards every intermediate result's *derived length*
    against ``max_bytes`` — editing never decompresses, but repeated
    ``concat``/``copy`` can grow a document exponentially, and the guard
    stops such a bomb at the first oversized intermediate.
    """
    slp = db.slp
    node = _apply(expr, db, slp, budget)
    if node is None:
        raise CDEError("CDE expression evaluates to the empty document")
    return node


def _apply(expr: CDE, db: DocumentDatabase, slp: SLP, budget=None) -> int | None:
    if budget is not None:
        budget.step()
    result = _apply_op(expr, db, slp, budget)
    if budget is not None and result is not None:
        budget.charge_bytes(slp.length(result), what="CDE intermediate result")
    return result


def _apply_op(expr: CDE, db: DocumentDatabase, slp: SLP, budget) -> int | None:
    if isinstance(expr, Doc):
        return db.node(expr.name)
    if isinstance(expr, Concat):
        return concat_balanced(
            slp, _apply(expr.left, db, slp, budget), _apply(expr.right, db, slp, budget)
        )
    if isinstance(expr, Extract):
        inner = _require(_apply(expr.inner, db, slp, budget))
        _check_range(expr.i, expr.j, slp.length(inner))
        _, tail = split_balanced(slp, inner, expr.i - 1)
        middle, _ = split_balanced(slp, _require(tail), expr.j - expr.i + 1)
        return middle
    if isinstance(expr, Delete):
        inner = _require(_apply(expr.inner, db, slp, budget))
        _check_range(expr.i, expr.j, slp.length(inner))
        prefix, tail = split_balanced(slp, inner, expr.i - 1)
        _, suffix = split_balanced(slp, _require(tail), expr.j - expr.i + 1)
        return concat_balanced(slp, prefix, suffix)
    if isinstance(expr, Insert):
        target = _require(_apply(expr.target, db, slp, budget))
        source = _apply(expr.source, db, slp, budget)
        _check_insert(expr.k, slp.length(target))
        prefix, suffix = split_balanced(slp, target, expr.k - 1)
        return concat_balanced(slp, concat_balanced(slp, prefix, source), suffix)
    if isinstance(expr, Copy):
        inner = _require(_apply(expr.inner, db, slp, budget))
        _check_range(expr.i, expr.j, slp.length(inner))
        _check_insert(expr.k, slp.length(inner))
        _, tail = split_balanced(slp, inner, expr.i - 1)
        factor, _ = split_balanced(slp, _require(tail), expr.j - expr.i + 1)
        prefix, suffix = split_balanced(slp, inner, expr.k - 1)
        return concat_balanced(slp, concat_balanced(slp, prefix, factor), suffix)
    raise CDEError(f"unknown CDE node {expr!r}")


def _require(node: int | None) -> int:
    if node is None:
        raise CDEError("intermediate CDE result is the empty document")
    return node


# ----------------------------------------------------------------------
# textual form (used by the SpannerDB edit journal and the CLI)
# ----------------------------------------------------------------------

_ESCAPES = {"\\": "\\\\", "\n": "\\n", "\r": "\\r", " ": "\\s",
            "(": "\\(", ")": "\\)", ",": "\\,"}
_UNESCAPES = {"\\": "\\", "n": "\n", "r": "\r", "s": " ",
              "(": "(", ")": ")", ",": ","}
_MAX_PARSE_DEPTH = 400


def _escape_name(name: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in name)


def format_cde(expr: CDE) -> str:
    """Render a CDE-expression in its canonical textual form, e.g.
    ``delete(concat(doc(a),doc(b)),2,5)``.

    Document names are backslash-escaped (``\\(``, ``\\)``, ``\\,``,
    ``\\s`` for space, ``\\n``, ``\\r``), so any name round-trips through
    :func:`parse_cde`: ``parse_cde(format_cde(e)) == e``.
    """
    if isinstance(expr, Doc):
        return f"doc({_escape_name(expr.name)})"
    if isinstance(expr, Concat):
        return f"concat({format_cde(expr.left)},{format_cde(expr.right)})"
    if isinstance(expr, Extract):
        return f"extract({format_cde(expr.inner)},{expr.i},{expr.j})"
    if isinstance(expr, Delete):
        return f"delete({format_cde(expr.inner)},{expr.i},{expr.j})"
    if isinstance(expr, Insert):
        return f"insert({format_cde(expr.target)},{format_cde(expr.source)},{expr.k})"
    if isinstance(expr, Copy):
        return f"copy({format_cde(expr.inner)},{expr.i},{expr.j},{expr.k})"
    raise CDEError(f"unknown CDE node {expr!r}")


class _CDEParser:
    """Recursive-descent parser for the textual CDE form.

    Every syntactic failure raises :class:`CDEError` (the fuzzing contract:
    garbage in, a clean typed error out — never an internal exception).
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def fail(self, message: str) -> "CDEError":
        return CDEError(f"bad CDE expression at offset {self.pos}: {message}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def expect(self, ch: str) -> None:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != ch:
            raise self.fail(f"expected {ch!r}")
        self.pos += 1

    def word(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isalpha():
            self.pos += 1
        return self.text[start:self.pos]

    def integer(self) -> int:
        self.skip_ws()
        start = self.pos
        if self.pos < len(self.text) and self.text[self.pos] == "-":
            self.pos += 1
        # ASCII digits only: str.isdigit() also accepts e.g. superscripts,
        # which int() then rejects
        while self.pos < len(self.text) and self.text[self.pos] in "0123456789":
            self.pos += 1
        if self.pos == start or self.text[start:self.pos] == "-":
            raise self.fail("expected an integer")
        return int(self.text[start:self.pos])

    def name(self) -> str:
        out: list[str] = []
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in "),":
                return "".join(out)
            if ch == "(":
                raise self.fail("unescaped '(' in document name")
            if ch == "\\":
                if self.pos + 1 >= len(self.text):
                    raise self.fail("dangling escape in document name")
                code = self.text[self.pos + 1]
                if code not in _UNESCAPES:
                    raise self.fail(f"unknown escape \\{code}")
                out.append(_UNESCAPES[code])
                self.pos += 2
                continue
            out.append(ch)
            self.pos += 1
        raise self.fail("unterminated document name")

    def expression(self, depth: int = 0) -> CDE:
        if depth > _MAX_PARSE_DEPTH:
            raise self.fail(f"expression nested deeper than {_MAX_PARSE_DEPTH}")
        op = self.word()
        self.expect("(")
        if op == "doc":
            name = self.name()
            self.expect(")")
            return Doc(name)
        if op == "concat":
            left = self.expression(depth + 1)
            self.expect(",")
            right = self.expression(depth + 1)
            self.expect(")")
            return Concat(left, right)
        if op in ("extract", "delete"):
            inner = self.expression(depth + 1)
            self.expect(",")
            i = self.integer()
            self.expect(",")
            j = self.integer()
            self.expect(")")
            return Extract(inner, i, j) if op == "extract" else Delete(inner, i, j)
        if op == "insert":
            target = self.expression(depth + 1)
            self.expect(",")
            source = self.expression(depth + 1)
            self.expect(",")
            k = self.integer()
            self.expect(")")
            return Insert(target, source, k)
        if op == "copy":
            inner = self.expression(depth + 1)
            self.expect(",")
            i = self.integer()
            self.expect(",")
            j = self.integer()
            self.expect(",")
            k = self.integer()
            self.expect(")")
            return Copy(inner, i, j, k)
        raise self.fail(f"unknown CDE operator {op!r}")


def parse_cde(text: str) -> CDE:
    """Parse the textual CDE form produced by :func:`format_cde`.

    Raises :class:`CDEError` on any malformed input; never any other
    exception type (fuzz-tested in ``tests/test_robustness.py``).
    """
    parser = _CDEParser(text)
    expr = parser.expression()
    parser.skip_ws()
    if parser.pos != len(text):
        raise parser.fail("trailing garbage after expression")
    return expr


class Editor:
    """Stateful CDE front-end over a document database.

    Documents added through the editor are strongly balanced; the editor
    asserts the invariant (the [40] precondition) and maintains it through
    every update.
    """

    def __init__(self, db: DocumentDatabase) -> None:
        self.db = db
        for _, node in db.documents():
            assert_strongly_balanced(db.slp, node)

    @classmethod
    def from_texts(cls, texts: dict[str, str]) -> "Editor":
        return cls(DocumentDatabase.from_texts(texts, balanced=True))

    def apply(self, name: str, expr: CDE) -> int:
        """Evaluate φ and store the result as the new document *name*.

        The new node is strongly balanced by construction; the invariant is
        re-checked cheaply on the node itself.
        """
        node = apply_cde(expr, self.db)
        self.db.add_node(name, node)
        return node

    def rebalance_document(self, name: str) -> int:
        """Force a document onto a strongly balanced equivalent (useful when
        nodes were imported from an external, unbalanced SLP)."""
        node = rebalance(self.db.slp, self.db.node(name))
        self.db._docs[name] = node
        return node
