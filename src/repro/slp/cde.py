"""Complex Document Editing (CDE) — paper Section 4.3.

A CDE-expression builds a new document out of the documents of an
SLP-represented database, using the algebra

* ``concat(D, D′)``
* ``extract(D, i, j)`` — the factor from position i to j (1-based, inclusive)
* ``delete(D, i, j)``
* ``insert(D, D′, k)`` — D′ begins at position k of the result
* ``copy(D, i, j, k)`` — extract then insert into the same document

(the last three are definable from the first two, and are implemented that
way).  Two semantics are provided:

* :func:`eval_cde` — the specification: plain-string evaluation;
* :func:`apply_cde` — evaluation *directly on the strongly balanced SLP*:
  every operation reduces to balanced splits and concats, costing
  ``O(log d)`` fresh nodes per operation, so a whole expression φ costs
  ``O(|φ| · log d)`` — the paper's headline bound for [40].

:meth:`Editor.apply` additionally stores the result as a new database
document and re-uses the incremental matrices of the compressed-evaluation
machinery, so the updated document can be queried immediately without
re-preprocessing (experiment C4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CDEError
from repro.slp.balance import (
    assert_strongly_balanced,
    concat_balanced,
    rebalance,
    split_balanced,
)
from repro.slp.slp import SLP, DocumentDatabase

__all__ = [
    "CDE",
    "Doc",
    "Concat",
    "Extract",
    "Delete",
    "Insert",
    "Copy",
    "eval_cde",
    "apply_cde",
    "Editor",
]


class CDE:
    """Base class of CDE-expression nodes."""

    def size(self) -> int:
        """The size |φ| of the expression (number of operator nodes)."""
        return 1 + sum(child.size() for child in self._children())

    def _children(self) -> tuple["CDE", ...]:
        return ()


@dataclass(frozen=True)
class Doc(CDE):
    """A database document, by name."""

    name: str


@dataclass(frozen=True)
class Concat(CDE):
    left: CDE
    right: CDE

    def _children(self) -> tuple[CDE, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Extract(CDE):
    """``extract(D, i, j)``: positions i..j inclusive, 1-based, i ≤ j."""

    inner: CDE
    i: int
    j: int

    def _children(self) -> tuple[CDE, ...]:
        return (self.inner,)


@dataclass(frozen=True)
class Delete(CDE):
    """``delete(D, i, j)``: remove positions i..j inclusive."""

    inner: CDE
    i: int
    j: int

    def _children(self) -> tuple[CDE, ...]:
        return (self.inner,)


@dataclass(frozen=True)
class Insert(CDE):
    """``insert(D, D′, k)``: D′ begins at position k (1 ≤ k ≤ |D| + 1)."""

    target: CDE
    source: CDE
    k: int

    def _children(self) -> tuple[CDE, ...]:
        return (self.target, self.source)


@dataclass(frozen=True)
class Copy(CDE):
    """``copy(D, i, j, k)``: paste the factor i..j at position k."""

    inner: CDE
    i: int
    j: int
    k: int

    def _children(self) -> tuple[CDE, ...]:
        return (self.inner,)


def _check_range(i: int, j: int, length: int) -> None:
    if not 1 <= i <= j <= length:
        raise CDEError(f"factor range [{i}, {j}] invalid for length {length}")


def _check_insert(k: int, length: int) -> None:
    if not 1 <= k <= length + 1:
        raise CDEError(f"insert position {k} invalid for length {length}")


def eval_cde(expr: CDE, documents: dict[str, str]) -> str:
    """The string semantics ``eval(φ)`` (the specification)."""
    if isinstance(expr, Doc):
        try:
            return documents[expr.name]
        except KeyError:
            raise CDEError(f"no document named {expr.name!r}") from None
    if isinstance(expr, Concat):
        return eval_cde(expr.left, documents) + eval_cde(expr.right, documents)
    if isinstance(expr, Extract):
        doc = eval_cde(expr.inner, documents)
        _check_range(expr.i, expr.j, len(doc))
        return doc[expr.i - 1: expr.j]
    if isinstance(expr, Delete):
        doc = eval_cde(expr.inner, documents)
        _check_range(expr.i, expr.j, len(doc))
        return doc[: expr.i - 1] + doc[expr.j:]
    if isinstance(expr, Insert):
        doc = eval_cde(expr.target, documents)
        other = eval_cde(expr.source, documents)
        _check_insert(expr.k, len(doc))
        return doc[: expr.k - 1] + other + doc[expr.k - 1:]
    if isinstance(expr, Copy):
        doc = eval_cde(expr.inner, documents)
        _check_range(expr.i, expr.j, len(doc))
        _check_insert(expr.k, len(doc))
        factor = doc[expr.i - 1: expr.j]
        return doc[: expr.k - 1] + factor + doc[expr.k - 1:]
    raise CDEError(f"unknown CDE node {expr!r}")


def apply_cde(expr: CDE, db: DocumentDatabase) -> int:
    """Evaluate φ directly on the strongly balanced SLP of *db*.

    Returns the node deriving ``eval(φ)``; the database is untouched except
    for fresh nodes added to the arena.  Every operation costs O(log d)
    fresh nodes (d as in the paper's bound).  Raises :class:`CDEError` if
    the expression evaluates to the empty document (SLPs derive non-empty
    strings) or on out-of-range positions.
    """
    slp = db.slp
    node = _apply(expr, db, slp)
    if node is None:
        raise CDEError("CDE expression evaluates to the empty document")
    return node


def _apply(expr: CDE, db: DocumentDatabase, slp: SLP) -> int | None:
    if isinstance(expr, Doc):
        return db.node(expr.name)
    if isinstance(expr, Concat):
        return concat_balanced(
            slp, _apply(expr.left, db, slp), _apply(expr.right, db, slp)
        )
    if isinstance(expr, Extract):
        inner = _require(_apply(expr.inner, db, slp))
        _check_range(expr.i, expr.j, slp.length(inner))
        _, tail = split_balanced(slp, inner, expr.i - 1)
        middle, _ = split_balanced(slp, _require(tail), expr.j - expr.i + 1)
        return middle
    if isinstance(expr, Delete):
        inner = _require(_apply(expr.inner, db, slp))
        _check_range(expr.i, expr.j, slp.length(inner))
        prefix, tail = split_balanced(slp, inner, expr.i - 1)
        _, suffix = split_balanced(slp, _require(tail), expr.j - expr.i + 1)
        return concat_balanced(slp, prefix, suffix)
    if isinstance(expr, Insert):
        target = _require(_apply(expr.target, db, slp))
        source = _apply(expr.source, db, slp)
        _check_insert(expr.k, slp.length(target))
        prefix, suffix = split_balanced(slp, target, expr.k - 1)
        return concat_balanced(slp, concat_balanced(slp, prefix, source), suffix)
    if isinstance(expr, Copy):
        inner = _require(_apply(expr.inner, db, slp))
        _check_range(expr.i, expr.j, slp.length(inner))
        _check_insert(expr.k, slp.length(inner))
        _, tail = split_balanced(slp, inner, expr.i - 1)
        factor, _ = split_balanced(slp, _require(tail), expr.j - expr.i + 1)
        prefix, suffix = split_balanced(slp, inner, expr.k - 1)
        return concat_balanced(slp, concat_balanced(slp, prefix, factor), suffix)
    raise CDEError(f"unknown CDE node {expr!r}")


def _require(node: int | None) -> int:
    if node is None:
        raise CDEError("intermediate CDE result is the empty document")
    return node


class Editor:
    """Stateful CDE front-end over a document database.

    Documents added through the editor are strongly balanced; the editor
    asserts the invariant (the [40] precondition) and maintains it through
    every update.
    """

    def __init__(self, db: DocumentDatabase) -> None:
        self.db = db
        for _, node in db.documents():
            assert_strongly_balanced(db.slp, node)

    @classmethod
    def from_texts(cls, texts: dict[str, str]) -> "Editor":
        return cls(DocumentDatabase.from_texts(texts, balanced=True))

    def apply(self, name: str, expr: CDE) -> int:
        """Evaluate φ and store the result as the new document *name*.

        The new node is strongly balanced by construction; the invariant is
        re-checked cheaply on the node itself.
        """
        node = apply_cde(expr, self.db)
        self.db.add_node(name, node)
        return node

    def rebalance_document(self, name: str) -> int:
        """Force a document onto a strongly balanced equivalent (useful when
        nodes were imported from an external, unbalanced SLP)."""
        node = rebalance(self.db.slp, self.db.node(name))
        self.db._docs[name] = node
        return node
