"""Compressed NFA membership: ``D(S) ∈ L(M)`` without decompressing
(the warm-up task of Section 4.2).

For each SLP node A, a boolean |Q|×|Q| matrix ``M_A`` records from which
state which state is reachable by reading ``D(A)``; for a pair node,
``M_A = M_B · M_C`` (boolean matrix multiplication), computed bottom-up
along the DAG.  Total time ``O(|S| · |Q|^3)`` — possibly *exponentially*
faster than the ``O(|D| · |Q|^2)`` simulation on the decompressed document,
which is exactly the crossover benchmark C2 measures.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.automata.nfa import NFA
from repro.core.alphabet import symbol_matches
from repro.slp.slp import SLP

__all__ = ["CompressedMembership", "simulate_uncompressed"]


class CompressedMembership:
    """Reusable compressed-membership oracle for one NFA.

    Per-(SLP, node) matrices are memoised, so repeated queries against the
    same document database — including documents that share subtrees — pay
    only for new nodes.  This is also the incremental behaviour needed
    after CDE updates ([40]): an edit creates O(log |D|) fresh nodes, and
    only those get new matrices.
    """

    def __init__(self, nfa: NFA) -> None:
        self.nfa = nfa.remove_epsilon()
        self.num_states = self.nfa.num_states
        self._char_matrices: dict[str, np.ndarray] = {}
        self._node_matrices: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def char_matrix(self, ch: str) -> np.ndarray:
        """The one-character transition matrix (bool, |Q|×|Q|)."""
        matrix = self._char_matrices.get(ch)
        if matrix is None:
            matrix = np.zeros((self.num_states, self.num_states), dtype=bool)
            for source in self.nfa.states():
                for symbol, target in self.nfa.arcs_from(source):
                    if symbol is not None and symbol_matches(symbol, ch):
                        matrix[source, target] = True
            self._char_matrices[ch] = matrix
        return matrix

    def node_matrix(self, slp: SLP, node: int) -> np.ndarray:
        """The reachability matrix of ``D(node)``, bottom-up with memo.

        With :mod:`repro.obs` enabled, memo effectiveness and kernel time
        are recorded (``slp.membership.cache_hits`` / ``.cache_misses`` /
        ``.kernel_ns``) — once per call, not per node."""
        key = (slp.serial, node)
        cached = self._node_matrices.get(key)
        if cached is not None:
            if obs.enabled():
                obs.metrics().counter("slp.membership.cache_hits").inc()
            return cached
        observing = obs.enabled()
        t0 = time.perf_counter_ns() if observing else 0
        nodes = slp.topological(node)
        fresh = 0
        for current in nodes:
            current_key = (slp.serial, current)
            if current_key in self._node_matrices:
                continue
            fresh += 1
            if slp.is_terminal(current):
                matrix = self.char_matrix(slp.char(current))
            else:
                left, right = slp.children(current)
                left_m = self._node_matrices[(slp.serial, left)]
                right_m = self._node_matrices[(slp.serial, right)]
                # boolean matrix product via float32 (exact: counts < 2^24)
                matrix = (
                    left_m.astype(np.float32) @ right_m.astype(np.float32)
                ) > 0.5
            self._node_matrices[current_key] = matrix
        if observing:
            registry = obs.metrics()
            registry.counter("slp.membership.cache_misses").inc(fresh)
            registry.counter("slp.membership.cache_hits").inc(len(nodes) - fresh)
            registry.counter("slp.membership.kernel_ns").inc(
                time.perf_counter_ns() - t0
            )
        return self._node_matrices[key]

    def accepts(self, slp: SLP, node: int) -> bool:
        """Decide ``D(node) ∈ L(M)`` in O(new nodes · |Q|^3)."""
        matrix = self.node_matrix(slp, node)
        initial = sorted(self.nfa.initial)
        accepting = sorted(self.nfa.accepting)
        if not initial or not accepting:
            return False
        return bool(matrix[np.ix_(initial, accepting)].any())


def simulate_uncompressed(nfa: NFA, doc: str) -> bool:
    """The baseline: classical O(|D| · |Q|^2) NFA simulation."""
    return nfa.accepts(doc)
