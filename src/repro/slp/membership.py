"""Compressed NFA membership: ``D(S) ∈ L(M)`` without decompressing
(the warm-up task of Section 4.2).

For each SLP node A, a boolean |Q|×|Q| matrix ``M_A`` records from which
state which state is reachable by reading ``D(A)``; for a pair node,
``M_A = M_B · M_C`` (boolean matrix multiplication), computed bottom-up
along the DAG.  Total time ``O(|S| · |Q|^3)`` — possibly *exponentially*
faster than the ``O(|D| · |Q|^2)`` simulation on the decompressed document,
which is exactly the crossover benchmark C2 measures.

Matrices are held packed (:class:`repro.kernels.bitmat.BitMatrix`, uint64
bit-words per row) and pair products run wave-by-wave through
:func:`repro.kernels.bitmat.bool_mm_many`: all nodes of equal depth are
multiplied in one batched BLAS call, and duplicate operand pairs — the
normal case on the repetitive documents SLPs exist for — are computed
once and shared.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.automata.nfa import NFA
from repro.core.alphabet import symbol_matches
from repro.kernels.bitmat import BitMatrix, bool_mm_many, pack_vec
from repro.slp.slp import SLP

__all__ = ["CompressedMembership", "simulate_uncompressed"]


class CompressedMembership:
    """Reusable compressed-membership oracle for one NFA.

    Per-(SLP, node) matrices are memoised, so repeated queries against the
    same document database — including documents that share subtrees — pay
    only for new nodes.  This is also the incremental behaviour needed
    after CDE updates ([40]): an edit creates O(log |D|) fresh nodes, and
    only those get new matrices.
    """

    def __init__(self, nfa: NFA) -> None:
        self.nfa = nfa.remove_epsilon()
        self.num_states = self.nfa.num_states
        self._char_matrices: dict[str, BitMatrix] = {}
        self._node_matrices: dict[tuple[int, int], BitMatrix] = {}
        self._initial_rows = np.array(sorted(self.nfa.initial), dtype=np.int64)
        accepting = np.zeros(self.num_states, dtype=bool)
        for state in self.nfa.accepting:
            accepting[state] = True
        self._accepting_words = pack_vec(accepting)

    # ------------------------------------------------------------------
    def char_matrix(self, ch: str) -> np.ndarray:
        """The one-character transition matrix (bool, |Q|×|Q|)."""
        return self._char_bitmatrix(ch).to_bool()

    def _char_bitmatrix(self, ch: str) -> BitMatrix:
        matrix = self._char_matrices.get(ch)
        if matrix is None:
            dense = np.zeros((self.num_states, self.num_states), dtype=bool)
            for source in self.nfa.states():
                for symbol, target in self.nfa.arcs_from(source):
                    if symbol is not None and symbol_matches(symbol, ch):
                        dense[source, target] = True
            matrix = BitMatrix.from_bool(dense)
            self._char_matrices[ch] = matrix
        return matrix

    def node_matrix(self, slp: SLP, node: int) -> np.ndarray:
        """The reachability matrix of ``D(node)`` as a bool array (a dense
        view of the packed form :meth:`node_bitmatrix` keeps cached)."""
        return self.node_bitmatrix(slp, node).to_bool()

    def node_bitmatrix(self, slp: SLP, node: int) -> BitMatrix:
        """The packed reachability matrix of ``D(node)``, bottom-up with
        memo; fresh pair nodes multiply as depth-waves through the batched,
        duplicate-collapsing kernel.

        With :mod:`repro.obs` enabled, memo effectiveness and kernel time
        are recorded (``slp.membership.cache_hits`` / ``.cache_misses`` /
        ``.kernel_ns``) — once per call, not per node."""
        key = (slp.serial, node)
        cached = self._node_matrices.get(key)
        if cached is not None:
            if obs.enabled():
                obs.metrics().counter("slp.membership.cache_hits").inc()
            return cached
        observing = obs.enabled()
        t0 = time.perf_counter_ns() if observing else 0
        serial = slp.serial
        matrices = self._node_matrices
        nodes = slp.topological(node)
        fresh = 0
        level: dict[int, int] = {}
        waves: list[list[tuple[int, int, int]]] = []
        for current in nodes:
            if (serial, current) in matrices:
                continue
            fresh += 1
            if slp.is_terminal(current):
                matrices[(serial, current)] = self._char_bitmatrix(
                    slp.char(current)
                )
                continue
            left, right = slp.children(current)
            depth = max(level.get(left, 0), level.get(right, 0)) + 1
            level[current] = depth
            if depth > len(waves):
                waves.append([])
            waves[depth - 1].append((current, left, right))
        # One intern pool per pass: equal matrices from different subtrees
        # become one object, so later waves collapse them by identity.
        intern: dict = {}
        for wave in waves:
            products = [
                (matrices[(serial, left)], matrices[(serial, right)])
                for _, left, right in wave
            ]
            for (current, _, _), product in zip(
                wave, bool_mm_many(products, intern=intern)
            ):
                matrices[(serial, current)] = product
        for wave in waves:
            for current, _, _ in wave:
                matrices[(serial, current)].release_dense()
        if observing:
            registry = obs.metrics()
            registry.counter("slp.membership.cache_misses").inc(fresh)
            registry.counter("slp.membership.cache_hits").inc(len(nodes) - fresh)
            registry.counter("slp.membership.kernel_ns").inc(
                time.perf_counter_ns() - t0
            )
        return matrices[key]

    def accepts(self, slp: SLP, node: int) -> bool:
        """Decide ``D(node) ∈ L(M)`` in O(new nodes · |Q|^3)."""
        matrix = self.node_bitmatrix(slp, node)
        if not len(self._initial_rows) or not self.nfa.accepting:
            return False
        return bool(
            (matrix.rows[self._initial_rows] & self._accepting_words).any()
        )


def simulate_uncompressed(nfa: NFA, doc: str) -> bool:
    """The baseline: classical O(|D| · |Q|^2) NFA simulation."""
    return nfa.accepts(doc)
