"""Compressed NFA membership: ``D(S) ∈ L(M)`` without decompressing
(the warm-up task of Section 4.2).

For each SLP node A, a boolean |Q|×|Q| matrix ``M_A`` records from which
state which state is reachable by reading ``D(A)``; for a pair node,
``M_A = M_B · M_C`` (boolean matrix multiplication), computed bottom-up
along the DAG.  Total time ``O(|S| · |Q|^3)`` — possibly *exponentially*
faster than the ``O(|D| · |Q|^2)`` simulation on the decompressed document,
which is exactly the crossover benchmark C2 measures.

Matrices are held packed (:class:`repro.kernels.bitmat.BitMatrix`, uint64
bit-words per row) and pair products run wave-by-wave through
:func:`repro.kernels.bitmat.bool_mm_many`: all nodes of equal depth are
multiplied in one batched BLAS call, and duplicate operand pairs — the
normal case on the repetitive documents SLPs exist for — are computed
once and shared.
"""

from __future__ import annotations

import time
import weakref

import numpy as np

from repro import obs
from repro.automata.nfa import NFA
from repro.core.alphabet import symbol_matches
from repro.kernels.bitmat import BitMatrix, bool_mm_many, pack_vec
from repro.slp.slp import SLP

__all__ = ["CompressedMembership", "simulate_uncompressed"]


class CompressedMembership:
    """Reusable compressed-membership oracle for one NFA.

    Per-(SLP, node) matrices are memoised in a per-arena index
    (``serial → node → matrix``), so repeated queries against the same
    document database — including documents that share subtrees — pay only
    for new nodes.  Fully-preprocessed roots are *sealed*: a repeat query
    on a sealed root returns without walking, and the discovery walk for a
    fresh root stops descending at any sealed child, so after an append or
    CDE edit only the O(fresh + log n) frontier is visited.  This is the
    incremental behaviour needed after CDE updates ([40]): an edit creates
    O(log |D|) fresh nodes, and only those get new matrices.
    """

    def __init__(self, nfa: NFA) -> None:
        self.nfa = nfa.remove_epsilon()
        self.num_states = self.nfa.num_states
        self._char_matrices: dict[str, BitMatrix] = {}
        #: serial -> node -> packed matrix (two-level, per-arena index)
        self._arena_matrices: dict[int, dict[int, BitMatrix]] = {}
        #: serial -> node ids whose whole subtree is cached (sealed roots)
        self._sealed: dict[int, set[int]] = {}
        #: serial -> finalizer purging that arena's matrices on collection
        self._arena_finalizers: dict[int, weakref.finalize] = {}
        self._initial_rows = np.array(sorted(self.nfa.initial), dtype=np.int64)
        accepting = np.zeros(self.num_states, dtype=bool)
        for state in self.nfa.accepting:
            accepting[state] = True
        self._accepting_words = pack_vec(accepting)

    # ------------------------------------------------------------------
    # cache administration
    # ------------------------------------------------------------------
    def cached_nodes(self, serial: int | None = None) -> int:
        """How many node matrices are cached — for one arena, or overall.
        O(1) per arena thanks to the two-level index."""
        if serial is not None:
            return len(self._arena_matrices.get(serial, ()))
        return sum(len(arena) for arena in self._arena_matrices.values())

    def is_sealed(self, slp: SLP, node: int) -> bool:
        """Whether *node*'s entire subtree is known cached (O(1))."""
        return node in self._sealed.get(slp.serial, ())

    def invalidate_from(self, slp: SLP, mark: int) -> int:
        """Drop cached matrices for nodes of *slp* with id ``>= mark``.

        Rollback truncates the arena back to a mark and later allocations
        *reuse* the freed ids, so stale matrices (and stale sealed bits)
        keyed on them would silently describe the wrong document.  Sealed
        ids below the mark stay sealed: children always have smaller ids
        than parents, so their subtrees are untouched by the truncation."""
        arena = self._arena_matrices.get(slp.serial)
        if not arena:
            return 0
        doomed = [node for node in arena if node >= mark]
        for node in doomed:
            del arena[node]
        sealed = self._sealed.get(slp.serial)
        if sealed:
            self._sealed[slp.serial] = {n for n in sealed if n < mark}
        return len(doomed)

    def _purge_arena(self, serial: int) -> None:
        """Drop a collected arena's matrices (weakref callback); O(that
        arena's entries) — other arenas are untouched, unscanned."""
        self._arena_finalizers.pop(serial, None)
        self._sealed.pop(serial, None)
        self._arena_matrices.pop(serial, None)

    def _ensure_finalizer(self, slp: SLP) -> None:
        serial = slp.serial
        if serial not in self._arena_finalizers:
            self._arena_finalizers[serial] = weakref.finalize(
                slp, self._purge_arena, serial
            )

    # ------------------------------------------------------------------
    def char_matrix(self, ch: str) -> np.ndarray:
        """The one-character transition matrix (bool, |Q|×|Q|)."""
        return self._char_bitmatrix(ch).to_bool()

    def _char_bitmatrix(self, ch: str) -> BitMatrix:
        matrix = self._char_matrices.get(ch)
        if matrix is None:
            dense = np.zeros((self.num_states, self.num_states), dtype=bool)
            for source in self.nfa.states():
                for symbol, target in self.nfa.arcs_from(source):
                    if symbol is not None and symbol_matches(symbol, ch):
                        dense[source, target] = True
            matrix = BitMatrix.from_bool(dense)
            self._char_matrices[ch] = matrix
        return matrix

    def node_matrix(self, slp: SLP, node: int) -> np.ndarray:
        """The reachability matrix of ``D(node)`` as a bool array (a dense
        view of the packed form :meth:`node_bitmatrix` keeps cached)."""
        return self.node_bitmatrix(slp, node).to_bool()

    def node_bitmatrix(self, slp: SLP, node: int) -> BitMatrix:
        """The packed reachability matrix of ``D(node)``, bottom-up with
        memo; fresh pair nodes multiply as depth-waves through the batched,
        duplicate-collapsing kernel.

        A sealed root returns its matrix with zero walk; otherwise the
        discovery walk (:meth:`SLP.frontier`) prunes at sealed children,
        and everything it visited is sealed afterwards so the next append
        only pays for its own spine.

        With :mod:`repro.obs` enabled, memo effectiveness and kernel time
        are recorded (``slp.membership.cache_hits`` / ``.cache_misses`` /
        ``.sealed_hits`` / ``.kernel_ns``) — once per call, not per node."""
        serial = slp.serial
        sealed = self._sealed.get(serial)
        arena = self._arena_matrices.get(serial)
        if sealed and node in sealed:
            if obs.enabled():
                registry = obs.metrics()
                registry.counter("slp.membership.sealed_hits").inc()
                registry.counter("slp.membership.cache_hits").inc()
            return arena[node]
        observing = obs.enabled()
        t0 = time.perf_counter_ns() if observing else 0
        self._ensure_finalizer(slp)
        if arena is None:
            arena = self._arena_matrices.setdefault(serial, {})
        if sealed is None:
            sealed = self._sealed.setdefault(serial, set())
        nodes, _skipped = slp.frontier(node, sealed)
        fresh = 0
        level: dict[int, int] = {}
        waves: list[list[tuple[int, int, int]]] = []
        for current in nodes:
            if current in arena:
                continue
            fresh += 1
            if slp.is_terminal(current):
                arena[current] = self._char_bitmatrix(slp.char(current))
                continue
            left, right = slp.children(current)
            depth = max(level.get(left, 0), level.get(right, 0)) + 1
            level[current] = depth
            if depth > len(waves):
                waves.append([])
            waves[depth - 1].append((current, left, right))
        # One intern pool per pass: equal matrices from different subtrees
        # become one object, so later waves collapse them by identity.
        intern: dict = {}
        for wave in waves:
            products = [
                (arena[left], arena[right]) for _, left, right in wave
            ]
            for (current, _, _), product in zip(
                wave, bool_mm_many(products, intern=intern)
            ):
                arena[current] = product
        for wave in waves:
            for current, _, _ in wave:
                arena[current].release_dense()
        # Seal bottom-up over the walked order: a node seals once its matrix
        # exists and (for pairs) both children are sealed — pruned children
        # were sealed already, so the property propagates to the root.
        for current in nodes:
            if current not in arena:
                continue
            if slp.is_terminal(current):
                sealed.add(current)
            else:
                left, right = slp.children(current)
                if left in sealed and right in sealed:
                    sealed.add(current)
        if observing:
            registry = obs.metrics()
            registry.counter("slp.membership.cache_misses").inc(fresh)
            registry.counter("slp.membership.cache_hits").inc(len(nodes) - fresh)
            registry.counter("slp.membership.kernel_ns").inc(
                time.perf_counter_ns() - t0
            )
        return arena[node]

    def accepts(self, slp: SLP, node: int) -> bool:
        """Decide ``D(node) ∈ L(M)`` in O(new nodes · |Q|^3)."""
        matrix = self.node_bitmatrix(slp, node)
        if not len(self._initial_rows) or not self.nfa.accepting:
            return False
        return bool(
            (matrix.rows[self._initial_rows] & self._accepting_words).any()
        )


def simulate_uncompressed(nfa: NFA, doc: str) -> bool:
    """The baseline: classical O(|D| · |Q|^2) NFA simulation."""
    return nfa.accepts(doc)
