"""Serialisation of SLP document databases.

A compressed document store is only useful if it can be *persisted in its
compressed form* — decompress-on-save would defeat the point (and is
impossible for the exponentially long documents SLPs can hold).  This
module writes and reads a compact, versioned, line-oriented text format:

    SLPDB 1
    T 0 a            # terminal node: id, character (escaped)
    P 2 0 1          # pair node: id, left id, right id
    D name 2         # designated document: name (escaped), node id

Node ids are renumbered densely in topological order, so files round-trip
through arenas of any history.  Only nodes reachable from the stored
documents are written.
"""

from __future__ import annotations

from typing import TextIO

from repro.errors import SLPError
from repro.slp.slp import SLP, DocumentDatabase

__all__ = ["dump_database", "load_database", "dumps_database", "loads_database"]

_MAGIC = "SLPDB 1"


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace(" ", "\\s")
    )


def _unescape(text: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch != "\\":
            out.append(ch)
            index += 1
            continue
        if index + 1 >= len(text):
            raise SLPError("dangling escape in serialised SLP")
        code = text[index + 1]
        out.append({"\\": "\\", "n": "\n", "r": "\r", "s": " "}.get(code, code))
        index += 2
    return "".join(out)


def dump_database(db: DocumentDatabase, stream: TextIO) -> None:
    """Write the database (compressed form) to a text stream."""
    roots = [node for _, node in db.documents()]
    order = db.slp.topological(*roots) if roots else []
    renumber: dict[int, int] = {}
    stream.write(_MAGIC + "\n")
    for node in order:
        fresh = len(renumber)
        renumber[node] = fresh
        if db.slp.is_terminal(node):
            stream.write(f"T {fresh} {_escape(db.slp.char(node))}\n")
        else:
            left, right = db.slp.children(node)
            stream.write(f"P {fresh} {renumber[left]} {renumber[right]}\n")
    for name, node in db.documents():
        stream.write(f"D {_escape(name)} {renumber[node]}\n")


def load_database(stream: TextIO) -> DocumentDatabase:
    """Read a database written by :func:`dump_database`.

    The loaded arena is hash-consed afresh, so sharing is at least as good
    as in the original.
    """
    header = stream.readline().rstrip("\n")
    if header != _MAGIC:
        raise SLPError(f"not an SLP database file (header {header!r})")
    db = DocumentDatabase(SLP())
    nodes: dict[int, int] = {}
    for line_number, raw in enumerate(stream, start=2):
        line = raw.rstrip("\n")
        if not line:
            continue
        parts = line.split(" ")
        kind = parts[0]
        try:
            if kind == "T" and len(parts) == 3:
                nodes[int(parts[1])] = db.slp.terminal(_unescape(parts[2]))
            elif kind == "P" and len(parts) == 4:
                nodes[int(parts[1])] = db.slp.pair(
                    nodes[int(parts[2])], nodes[int(parts[3])]
                )
            elif kind == "D" and len(parts) == 3:
                db.add_node(_unescape(parts[1]), nodes[int(parts[2])])
            else:
                raise SLPError(f"bad record kind {kind!r}")
        except (KeyError, ValueError) as exc:
            raise SLPError(
                f"corrupt SLP database at line {line_number}: {line!r} ({exc})"
            ) from None
    return db


def dumps_database(db: DocumentDatabase) -> str:
    """Serialise to a string."""
    import io

    buffer = io.StringIO()
    dump_database(db, buffer)
    return buffer.getvalue()


def loads_database(text: str) -> DocumentDatabase:
    """Deserialise from a string."""
    import io

    return load_database(io.StringIO(text))
