"""Serialisation of SLP document databases, with crash-safe extensions.

A compressed document store is only useful if it can be *persisted in its
compressed form* — decompress-on-save would defeat the point (and is
impossible for the exponentially long documents SLPs can hold).  This
module writes and reads a compact, versioned, line-oriented text format:

    SLPDB 1
    T 0 a            # terminal node: id, character (escaped)
    P 2 0 1          # pair node: id, left id, right id
    D name 2         # designated document: name (escaped), node id

Node ids are renumbered densely in topological order, so files round-trip
through arenas of any history.  Only nodes reachable from the stored
documents are written.

Version 2 (:func:`dump_snapshot`) appends a CRC-32 trailer line

    C deadbeef

over everything before it, so a torn or bit-flipped snapshot is *detected*
(:class:`~repro.errors.PersistenceError`) instead of silently loading a
corrupt store.  :func:`load_database` accepts both versions.

The edit journal (:func:`encode_journal_record` / :func:`read_journal`) is
an append-only redo log used by :class:`~repro.db.SpannerDB`: one record
per committed mutation, each line individually checksummed.  A commit
appends its whole batch of records *plus* a commit marker
(:func:`encode_commit_marker`) in a single write, and
:func:`read_journal` returns only records from batches whose marker is
intact — so a torn append loses the in-flight batch *whole*, never a
prefix of it, keeping multi-mutation transactions all-or-nothing across
crash recovery.
"""

from __future__ import annotations

import zlib
from typing import TextIO

from repro.errors import PersistenceError, SLPError
from repro.slp.slp import SLP, DocumentDatabase

__all__ = [
    "dump_database",
    "load_database",
    "dumps_database",
    "loads_database",
    "dump_snapshot",
    "dumps_snapshot",
    "JOURNAL_MAGIC",
    "encode_journal_record",
    "encode_commit_marker",
    "decode_journal_line",
    "read_journal",
]

_MAGIC = "SLPDB 1"
_MAGIC_V2 = "SLPDB 2"
JOURNAL_MAGIC = "SLPJRNL 2"


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace(" ", "\\s")
    )


def _unescape(text: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch != "\\":
            out.append(ch)
            index += 1
            continue
        if index + 1 >= len(text):
            raise SLPError("dangling escape in serialised SLP")
        code = text[index + 1]
        out.append({"\\": "\\", "n": "\n", "r": "\r", "s": " "}.get(code, code))
        index += 2
    return "".join(out)


def _render_records(db: DocumentDatabase) -> list[str]:
    """The T/P/D record lines of *db* (reachable nodes, densely renumbered)."""
    roots = [node for _, node in db.documents()]
    order = db.slp.topological(*roots) if roots else []
    renumber: dict[int, int] = {}
    lines: list[str] = []
    for node in order:
        fresh = len(renumber)
        renumber[node] = fresh
        if db.slp.is_terminal(node):
            lines.append(f"T {fresh} {_escape(db.slp.char(node))}")
        else:
            left, right = db.slp.children(node)
            lines.append(f"P {fresh} {renumber[left]} {renumber[right]}")
    for name, node in db.documents():
        lines.append(f"D {_escape(name)} {renumber[node]}")
    return lines


def dump_database(db: DocumentDatabase, stream: TextIO) -> None:
    """Write the database (compressed form, version-1 format) to a stream."""
    stream.write(_MAGIC + "\n")
    for line in _render_records(db):
        stream.write(line + "\n")


def dump_snapshot(db: DocumentDatabase, stream: TextIO) -> None:
    """Write a version-2 *checksummed* snapshot.

    Identical to :func:`dump_database` plus a trailing ``C <crc32>`` line
    over everything before it; :func:`load_database` refuses a version-2
    file whose checksum does not match (torn-write detection)."""
    body = _MAGIC_V2 + "\n" + "".join(
        line + "\n" for line in _render_records(db)
    )
    stream.write(body)
    stream.write(f"C {zlib.crc32(body.encode('utf-8')):08x}\n")


def load_database(stream: TextIO) -> DocumentDatabase:
    """Read a database written by :func:`dump_database` or
    :func:`dump_snapshot`.

    The loaded arena is hash-consed afresh, so sharing is at least as good
    as in the original.  Version-2 snapshots are checksum-verified first
    and raise :class:`~repro.errors.PersistenceError` when torn or corrupt.
    """
    return loads_database(stream.read())


def loads_database(text: str) -> DocumentDatabase:
    """Deserialise from a string (either format version)."""
    lines = text.split("\n")
    header = lines[0] if lines else ""
    if header == _MAGIC_V2:
        record_lines = _verify_snapshot(text, lines)
    elif header == _MAGIC:
        record_lines = lines[1:]
    else:
        raise SLPError(f"not an SLP database file (header {header!r})")

    db = DocumentDatabase(SLP())
    nodes: dict[int, int] = {}
    for line_number, line in enumerate(record_lines, start=2):
        if not line:
            continue
        parts = line.split(" ")
        kind = parts[0]
        try:
            if kind == "T" and len(parts) == 3:
                nodes[int(parts[1])] = db.slp.terminal(_unescape(parts[2]))
            elif kind == "P" and len(parts) == 4:
                nodes[int(parts[1])] = db.slp.pair(
                    nodes[int(parts[2])], nodes[int(parts[3])]
                )
            elif kind == "D" and len(parts) == 3:
                db.add_node(_unescape(parts[1]), nodes[int(parts[2])])
            else:
                raise SLPError(f"bad record kind {kind!r}")
        except (KeyError, ValueError) as exc:
            raise SLPError(
                f"corrupt SLP database at line {line_number}: {line!r} ({exc})"
            ) from None
    return db


def _verify_snapshot(text: str, lines: list[str]) -> list[str]:
    """Checksum-check a version-2 snapshot; return its record lines."""
    # the last non-empty line must be the checksum trailer
    trailer_index = len(lines) - 1
    while trailer_index >= 0 and lines[trailer_index] == "":
        trailer_index -= 1
    trailer = lines[trailer_index] if trailer_index >= 0 else ""
    parts = trailer.split(" ")
    if len(parts) != 2 or parts[0] != "C":
        raise PersistenceError(
            "snapshot is torn: checksum trailer missing or malformed"
        )
    body = "".join(line + "\n" for line in lines[:trailer_index])
    try:
        expected = int(parts[1], 16)
    except ValueError:
        raise PersistenceError(
            f"snapshot checksum trailer unreadable: {trailer!r}"
        ) from None
    actual = zlib.crc32(body.encode("utf-8"))
    if actual != expected:
        raise PersistenceError(
            f"snapshot failed checksum (expected {expected:08x}, "
            f"got {actual:08x}) — torn write or corruption"
        )
    return lines[1:trailer_index]


def dumps_database(db: DocumentDatabase) -> str:
    """Serialise to a string (version-1 format)."""
    import io

    buffer = io.StringIO()
    dump_database(db, buffer)
    return buffer.getvalue()


def dumps_snapshot(db: DocumentDatabase) -> str:
    """Serialise to a string (version-2 checksummed format)."""
    import io

    buffer = io.StringIO()
    dump_snapshot(db, buffer)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# the append-only edit journal
# ----------------------------------------------------------------------

def encode_journal_record(fields: tuple[str, ...] | list[str]) -> str:
    """Encode one journal record: space-separated escaped fields, prefixed
    with a CRC-32 of the payload.  One line, no trailing newline."""
    payload = " ".join(_escape(field) for field in fields)
    return f"{zlib.crc32(payload.encode('utf-8')):08x} {payload}"


def encode_commit_marker(count: int) -> str:
    """Encode the commit marker sealing a batch of *count* records.

    A marker is an ordinary checksummed journal line with the reserved
    record kind ``C``; written in the *same* append as its batch, its
    presence proves the whole batch reached the disk, so recovery replays
    the batch all-or-nothing."""
    return encode_journal_record(("C", str(count)))


def decode_journal_line(line: str) -> list[str] | None:
    """Decode one journal line; ``None`` if it is torn or corrupt (checksum
    mismatch, bad structure) — the caller stops replaying there."""
    head, sep, payload = line.partition(" ")
    if not sep or len(head) != 8:
        return None
    try:
        expected = int(head, 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("utf-8")) != expected:
        return None
    try:
        return [_unescape(field) for field in payload.split(" ")]
    except SLPError:
        return None


def read_journal(stream: TextIO) -> tuple[list[list[str]], bool]:
    """Read an edit journal: ``(records, clean)``.

    Only *committed* records are returned: a batch counts once the
    ``C <n>`` commit marker sealing it (written in the same append) is
    present, intact, and carries the right count.  Replay-safe by
    construction: reading stops at the first line that fails its checksum,
    and trailing records not sealed by a marker are discarded — a torn
    append loses the in-flight batch whole, never a prefix of it, so
    multi-mutation transactions stay all-or-nothing across recovery.
    ``clean`` is ``False`` when a torn tail, an unsealed batch, or a bad
    header was found.  A journal that does not even carry the magic header
    is treated as entirely torn — empty, not an error — because a crash
    can tear the very first write.
    """
    header = stream.readline().rstrip("\n")
    if header != JOURNAL_MAGIC:
        return [], False
    committed: list[list[str]] = []
    batch: list[list[str]] = []
    for raw in stream:
        line = raw.rstrip("\n")
        if not line:
            continue
        record = decode_journal_line(line)
        if record is None or raw[-1:] != "\n":
            # torn or corrupt: everything from here on is untrusted
            return committed, False
        if record and record[0] == "C":
            if len(record) != 2 or record[1] != str(len(batch)):
                # the marker does not seal the records before it: corrupt
                return committed, False
            committed.extend(batch)
            batch = []
        else:
            batch.append(record)
    return committed, not batch
