"""Straight-line programs (SLPs) and SLP-represented document databases
(paper Section 4).

An SLP is a DAG whose sinks represent the alphabet symbols and whose inner
nodes have a *left* and a *right* child; a node A derives the document
``D(A) = D(left) · D(right)``.  Designating nodes as documents turns one SLP
into a *document database* (Figure 1 of the paper).

Implementation notes
--------------------

* The :class:`SLP` object is an **arena with hash-consing**: structurally
  equal pairs are shared automatically, which is what gives SLPs their
  compression (and what the balanced editing operations of Section 4.3
  exploit for persistence).  Node handles are plain ints.
* Per-node ``length`` and ``order`` (the paper's ``ord``: longest path to a
  leaf, plus one) are maintained incrementally, so balancedness predicates
  are O(1) per node.
* Lengths are Python ints, so documents of astronomically exponential
  length are representable — deriving them is guarded by an explicit limit.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from repro.errors import SLPError

__all__ = ["SLP", "DocumentDatabase", "figure_1_slp", "figure_1_database"]


class SLP:
    """An arena of hash-consed SLP nodes.

    Node ids are ints; terminals and pairs are created through
    :meth:`terminal` and :meth:`pair` and never mutated or deleted.
    """

    __slots__ = (
        "_char",
        "_left",
        "_right",
        "_length",
        "_order",
        "_terminals",
        "_pairs",
        "_serial",
        "__weakref__",
    )

    #: process-wide arena serials; ``id()`` is reused after collection, so
    #: evaluator caches keyed by it could silently serve matrices computed
    #: for a dead arena — serials are unique for the life of the process
    _serials = itertools.count()

    def __init__(self) -> None:
        self._serial = next(SLP._serials)
        self._char: list[str | None] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._length: list[int] = []
        self._order: list[int] = []
        self._terminals: dict[str, int] = {}
        self._pairs: dict[tuple[int, int], int] = {}

    @property
    def serial(self) -> int:
        """A process-unique arena identifier, safe to key caches by."""
        return self._serial

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def terminal(self, ch: str) -> int:
        """The (unique) sink node deriving the single character *ch*."""
        if len(ch) != 1:
            raise SLPError(f"terminal must be a single character, got {ch!r}")
        node = self._terminals.get(ch)
        if node is None:
            node = self._new_node(ch, -1, -1, 1, 1)
            self._terminals[ch] = node
        return node

    def pair(self, left: int, right: int) -> int:
        """The (hash-consed) inner node deriving ``D(left)·D(right)``."""
        self._check(left)
        self._check(right)
        node = self._pairs.get((left, right))
        if node is None:
            node = self._new_node(
                None,
                left,
                right,
                self._length[left] + self._length[right],
                max(self._order[left], self._order[right]) + 1,
            )
            self._pairs[(left, right)] = node
        return node

    def _new_node(self, ch, left, right, length, order) -> int:
        self._char.append(ch)
        self._left.append(left)
        self._right.append(right)
        self._length.append(length)
        self._order.append(order)
        return len(self._char) - 1

    def _check(self, node: int) -> None:
        if not 0 <= node < len(self._char):
            raise SLPError(f"unknown SLP node {node}")

    # ------------------------------------------------------------------
    # transactional staging
    # ------------------------------------------------------------------
    def mark(self) -> int:
        """A rollback token: the current arena size.

        Nodes are allocated densely, so every node created after ``mark()``
        has id ``>= mark`` and :meth:`truncate` can discard exactly the
        staged allocations of a failed mutation.
        """
        return len(self._char)

    def truncate(self, mark: int) -> int:
        """Discard every node allocated at or after *mark*.

        Safe only when no live structure references the discarded ids —
        ``SpannerDB``'s transaction rollback guarantees this by restoring
        the document table and evaluator caches in the same step.  Returns
        the number of nodes discarded.  Old nodes can never reference new
        ones (children are always allocated before their parents), so the
        surviving prefix is closed under reachability.
        """
        if not 0 <= mark <= len(self._char):
            raise SLPError(f"invalid arena mark {mark}")
        discarded = len(self._char) - mark
        if discarded == 0:
            return 0
        del self._char[mark:]
        del self._left[mark:]
        del self._right[mark:]
        del self._length[mark:]
        del self._order[mark:]
        self._terminals = {ch: n for ch, n in self._terminals.items() if n < mark}
        self._pairs = {key: n for key, n in self._pairs.items() if n < mark}
        return discarded

    # ------------------------------------------------------------------
    # arena shipping (the process backend)
    # ------------------------------------------------------------------
    def arena_snapshot(self) -> dict:
        """The arena as three flat int64 arrays plus a content digest.

        ``chars[i]`` is the code point of terminal *i* (or −1 for a pair
        node), ``left``/``right`` are child ids (−1 for terminals).
        Lengths and orders are deliberately *not* shipped — SLPs can
        derive documents of astronomically exponential length, so those
        are arbitrary-precision ints that :meth:`from_arena` recomputes
        instead.  The digest keys worker-side arena caches: it hashes
        content, not identity, so a :meth:`truncate` rollback that reuses
        node ids can never alias a stale cached arena."""
        import hashlib

        import numpy as np

        chars = np.array(
            [-1 if ch is None else ord(ch) for ch in self._char],
            dtype=np.int64,
        )
        left = np.array(self._left, dtype=np.int64)
        right = np.array(self._right, dtype=np.int64)
        digest = hashlib.blake2b(digest_size=16)
        digest.update(chars.tobytes())
        digest.update(left.tobytes())
        digest.update(right.tobytes())
        return {
            "chars": chars,
            "left": left,
            "right": right,
            "digest": digest.hexdigest(),
        }

    @classmethod
    def from_arena(cls, chars, left, right) -> "SLP":
        """Rebuild an arena from :meth:`arena_snapshot` arrays.

        Node ids are preserved exactly (position *is* identity), so entry
        keys computed against the rebuilt arena transfer to the original
        by id.  The rebuilt SLP has its own process-unique serial."""
        slp = cls()
        for index in range(len(chars)):
            code = int(chars[index])
            if code >= 0:
                slp._new_node(chr(code), -1, -1, 1, 1)
                slp._terminals[chr(code)] = index
            else:
                lhs, rhs = int(left[index]), int(right[index])
                if not (0 <= lhs < index and 0 <= rhs < index):
                    raise SLPError(
                        f"arena snapshot node {index} references children"
                        f" ({lhs}, {rhs}) not allocated before it"
                    )
                slp._new_node(
                    None,
                    lhs,
                    rhs,
                    slp._length[lhs] + slp._length[rhs],
                    max(slp._order[lhs], slp._order[rhs]) + 1,
                )
                slp._pairs[(lhs, rhs)] = index
        return slp

    def from_text(self, text: str) -> int:
        """A balanced parse of *text* (no compression beyond sharing).

        Builds a perfectly balanced binary concatenation tree; repeated
        factors of equal shape are shared by hash-consing.  For real
        compression use :mod:`repro.slp.build`.
        """
        if not text:
            raise SLPError("SLPs derive non-empty documents")
        nodes = [self.terminal(ch) for ch in text]
        while len(nodes) > 1:
            paired = [
                self.pair(nodes[i], nodes[i + 1])
                for i in range(0, len(nodes) - 1, 2)
            ]
            if len(nodes) % 2:
                paired.append(nodes[-1])
            nodes = paired
        return nodes[0]

    def append_text(self, node: int | None, text: str) -> int | None:
        """A strongly balanced node deriving ``D(node) + text``.

        The streaming append primitive: *text* is parsed into a strongly
        balanced subtree and joined onto *node*'s right spine with the
        AVL join from :func:`repro.slp.balance.concat_balanced`, so only
        ``O(|text| + ord(node))`` fresh nodes are allocated and every
        pre-existing node (and any evaluator-cache entry keyed on it)
        survives untouched.  *node* must be ``None`` (empty document) or
        strongly balanced — documents built by ``rebalance``/
        ``balanced_node`` or by previous ``append_text`` calls qualify.

        Fresh nodes have ids ``>= mark()`` taken before the call, which
        is what makes incremental cache maintenance (preprocess only the
        new spine; roll back by truncating to the mark) possible.
        """
        from repro.slp.balance import concat_balanced
        from repro.slp.build import balanced_node

        if not text:
            return node
        suffix = balanced_node(self, text)
        return concat_balanced(self, node, suffix)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def is_terminal(self, node: int) -> bool:
        self._check(node)
        return self._char[node] is not None

    def char(self, node: int) -> str:
        if not self.is_terminal(node):
            raise SLPError(f"node {node} is not a terminal")
        return self._char[node]  # type: ignore[return-value]

    def children(self, node: int) -> tuple[int, int]:
        if self.is_terminal(node):
            raise SLPError(f"terminal node {node} has no children")
        return self._left[node], self._right[node]

    def length(self, node: int) -> int:
        """``|D(node)|`` (maintained incrementally; O(1))."""
        self._check(node)
        return self._length[node]

    def order(self, node: int) -> int:
        """The paper's ``ord``: longest path to a leaf, plus one (O(1))."""
        self._check(node)
        return self._order[node]

    def num_nodes(self) -> int:
        """Total nodes in the arena (shared across all documents)."""
        return len(self._char)

    def arena_bytes(self) -> int:
        """Approximate heap footprint of the arena containers in bytes.

        Counts the five parallel per-node lists and the two hash-consing
        dicts (container overhead plus slot pointers); the shared
        small-int/char objects they reference are not double-counted.
        Surfaced by :meth:`repro.db.SpannerDB.stats` as
        ``slp_arena_bytes``."""
        import sys

        return (
            sys.getsizeof(self._char)
            + sys.getsizeof(self._left)
            + sys.getsizeof(self._right)
            + sys.getsizeof(self._length)
            + sys.getsizeof(self._order)
            + sys.getsizeof(self._terminals)
            + sys.getsizeof(self._pairs)
        )

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def derive(self, node: int, limit: int = 10_000_000) -> str:
        """The derived document ``D(node)``.

        Refuses to materialise documents longer than *limit* — SLPs can be
        exponentially smaller than their documents, and accidentally
        decompressing is the classic footgun of compressed algorithmics.
        """
        if self.length(node) > limit:
            raise SLPError(
                f"derivation of length {self.length(node)} exceeds limit {limit}"
            )
        out: list[str] = []
        stack = [node]
        while stack:
            current = stack.pop()
            ch = self._char[current]
            if ch is not None:
                out.append(ch)
            else:
                stack.append(self._right[current])
                stack.append(self._left[current])
        return "".join(out)

    def reachable(self, *roots: int) -> set[int]:
        """All nodes reachable from *roots* (the size ``|S|`` of Section 4
        counts these)."""
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            self._check(node)
            seen.add(node)
            if self._char[node] is None:
                stack.append(self._left[node])
                stack.append(self._right[node])
        return seen

    def size(self, *roots: int) -> int:
        """``|S|`` = number of reachable nodes from *roots*."""
        return len(self.reachable(*roots))

    def topological(self, *roots: int) -> list[int]:
        """Reachable nodes in bottom-up (children before parents) order."""
        order: list[int] = []
        seen: set[int] = set()

        def visit(node: int) -> None:
            stack = [(node, False)]
            while stack:
                current, expanded = stack.pop()
                if expanded:
                    order.append(current)
                    continue
                if current in seen:
                    continue
                seen.add(current)
                stack.append((current, True))
                if self._char[current] is None:
                    stack.append((self._right[current], False))
                    stack.append((self._left[current], False))

        for root in roots:
            visit(root)
        return order

    def frontier(self, root: int, stop) -> tuple[list[int], int]:
        """Reachable nodes in bottom-up order, *without descending* into
        any node contained in *stop* (a set-like of node ids).

        This is the discovery walk of incremental maintenance: evaluator
        caches mark fully preprocessed subtrees as *sealed*, and because
        every mutation primitive (``pair``, ``append_text``, ``apply_cde``,
        the balanced concat/split) only *appends* arena nodes, the
        frontier of a post-edit root is the fresh spine plus the sealed
        boundary — ``O(fresh + log n)`` nodes instead of the ``O(n)`` full
        :meth:`topological` walk.

        Returns ``(order, skipped)``: *order* lists the reachable nodes
        **not** in *stop* (children before parents, stopped children
        excluded), *skipped* counts the distinct stopped nodes the walk
        halted at.  ``frontier(root, ())`` is :meth:`topological`.
        """
        self._check(root)
        order: list[int] = []
        skipped = 0
        seen: set[int] = set()
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            current, expanded = stack.pop()
            if expanded:
                order.append(current)
                continue
            if current in seen:
                continue
            seen.add(current)
            if current in stop:
                skipped += 1
                continue
            stack.append((current, True))
            if self._char[current] is None:
                stack.append((self._right[current], False))
                stack.append((self._left[current], False))
        return order, skipped

    # ------------------------------------------------------------------
    # balancedness (Section 4.1)
    # ------------------------------------------------------------------
    def bal(self, node: int) -> int:
        """``bal(A) = ord(left) − ord(right)`` (0 for terminals)."""
        if self.is_terminal(node):
            return 0
        left, right = self.children(node)
        return self._order[left] - self._order[right]

    def is_balanced(self, node: int) -> bool:
        """``bal(A) ∈ {−1, 0, 1}``."""
        return self.bal(node) in (-1, 0, 1)

    def is_strongly_balanced(self, node: int) -> bool:
        """*node* and all its descendants are balanced."""
        return all(self.is_balanced(n) for n in self.reachable(node))

    def is_c_shallow(self, node: int, c: float = 2.0) -> bool:
        """``ord(A) ≤ c · log2|D(A)|`` for the node and all descendants
        (leaves and single-character derivations are trivially shallow)."""
        import math

        for n in self.reachable(node):
            length = self._length[n]
            if length <= 1:
                continue
            if self._order[n] - 1 > c * math.log2(length):
                return False
        return True


class DocumentDatabase:
    """A set of named documents stored as designated nodes of one SLP."""

    def __init__(self, slp: SLP | None = None) -> None:
        self.slp = slp if slp is not None else SLP()
        self._docs: dict[str, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_texts(cls, texts: dict[str, str], balanced: bool = True) -> "DocumentDatabase":
        """Build a database from plain strings (balanced parses by default)."""
        db = cls()
        for name, text in texts.items():
            db.add_text(name, text, balanced=balanced)
        return db

    def add_text(self, name: str, text: str, balanced: bool = True) -> int:
        from repro.slp.build import balanced_node

        if balanced:
            node = balanced_node(self.slp, text)
        else:
            node = self.slp.from_text(text)
        return self.add_node(name, node)

    def add_node(self, name: str, node: int) -> int:
        if name in self._docs:
            raise SLPError(f"document {name!r} already exists")
        self.slp._check(node)
        self._docs[name] = node
        return node

    # ------------------------------------------------------------------
    def node(self, name: str) -> int:
        try:
            return self._docs[name]
        except KeyError:
            raise SLPError(f"no document named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._docs)

    def __contains__(self, name: str) -> bool:
        return name in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def document(self, name: str, limit: int = 10_000_000) -> str:
        """Decompress one document (test/debug helper)."""
        return self.slp.derive(self.node(name), limit)

    def documents(self) -> Iterator[tuple[str, int]]:
        yield from sorted(self._docs.items())

    def size(self) -> int:
        """``|S|`` restricted to nodes reachable from stored documents."""
        return self.slp.size(*self._docs.values())


def figure_1_slp() -> tuple[SLP, dict[str, int]]:
    """The SLP of Figure 1 of the paper (solid part), exactly.

    Returns the arena and a name → node map for
    ``T_a, T_b, T_c, E, F, C, B, D, A1, A2, A3``, with::

        D(E) = ab     D(F) = bc    D(C) = bca    D(B) = abbca
        D(D) = bcaabbca
        D(A1) = ababbcabca   D(A2) = bcabcaabbca   D(A3) = ababbca

    and the node orders / balances reported in Section 4.1.
    """
    slp = SLP()
    t_a, t_b, t_c = slp.terminal("a"), slp.terminal("b"), slp.terminal("c")
    e = slp.pair(t_a, t_b)          # ab
    f = slp.pair(t_b, t_c)          # bc
    c = slp.pair(f, t_a)            # bca
    b = slp.pair(e, c)              # abbca
    d = slp.pair(c, b)              # bcaabbca
    a3 = slp.pair(e, b)             # ababbca
    a1 = slp.pair(a3, c)            # ababbcabca
    a2 = slp.pair(c, d)             # bcabcaabbca
    return slp, {
        "T_a": t_a, "T_b": t_b, "T_c": t_c,
        "E": e, "F": f, "C": c, "B": b, "D": d,
        "A1": a1, "A2": a2, "A3": a3,
    }


def figure_1_database() -> tuple[DocumentDatabase, dict[str, int]]:
    """The document database of Figure 1: documents D1, D2, D3 at the
    designated nodes A1, A2, A3."""
    slp, nodes = figure_1_slp()
    db = DocumentDatabase(slp)
    db.add_node("D1", nodes["A1"])
    db.add_node("D2", nodes["A2"])
    db.add_node("D3", nodes["A3"])
    return db, nodes
