"""Regular spanner evaluation over SLP-compressed documents
(paper Section 4.2; Schmid & Schweikardt [39], updates as in [40]).

The algorithm generalises the compressed membership test: for a
*deterministic* extended vset-automaton with state set Q and every SLP node
A we precompute

* ``σ_A`` — the *pure* transition function: the state reached by reading
  ``D(A)`` with **no** marker emissions (a partial function Q → Q, because
  the automaton is deterministic over characters);
* ``T_A`` — the boolean reachability matrix allowing arbitrary marker
  emissions inside ``D(A)`` (one block per position, the left boundary
  owned by A, the right boundary by A's context); for a pair node
  ``T_A = T_B · T_C`` exactly as in the membership warm-up.

Preprocessing is ``O(|S| · |Q|^3)`` — linear in the *compressed* size, the
[39] bound.  Enumeration then walks the DAG top-down: marker-free stretches
are skipped wholesale through ``σ``, the recursion only descends towards
positions where an emission that can still reach acceptance happens
(pruned with ``T``-matrix/continuation-vector products), and each output
tuple therefore costs ``O(depth · |Q|^2)`` — i.e. **O(log |D|) delay** on
balanced SLPs, independent of the compressibility of the document.

Because matrices are memoised per node and CDE editing only creates
O(|φ| · log d) fresh nodes (sharing the rest), evaluating a spanner on an
edited document only pays for the fresh nodes — the dynamic behaviour of
[40] (experiment C4).
"""

from __future__ import annotations

import time
import weakref
from typing import Iterator

import numpy as np

from repro import obs
from repro.automata.evset import DeterministicEVA, ExtendedVSetAutomaton
from repro.core.spans import SpanRelation, SpanTuple
from repro.enumeration.naive import emissions_to_tuple
from repro.obs.profile import DelayProfiler
from repro.slp.slp import SLP

__all__ = ["SLPSpannerEvaluator"]

_DEAD = -1


class SLPSpannerEvaluator:
    """Compressed evaluation of one regular spanner over SLP documents."""

    def __init__(self, spanner) -> None:
        if isinstance(spanner, DeterministicEVA):
            det = spanner
        elif isinstance(spanner, ExtendedVSetAutomaton):
            det = spanner.determinize()
        else:
            det = ExtendedVSetAutomaton.from_vset(spanner).determinize()
        self.det = det
        q = det.num_states
        # Mark1: one optional marker block (identity ∪ set-arc relation);
        # MarkE: the strict (≥ one marker block) part
        mark_e = np.zeros((q, q), dtype=bool)
        for state in range(q):
            for target in det.set_trans[state].values():
                mark_e[state, target] = True
        mark1 = np.eye(q, dtype=bool) | mark_e
        self._mark1 = mark1
        self._mark_e = mark_e
        self._accepting = np.zeros(q, dtype=bool)
        for state in det.accepting:
            self._accepting[state] = True
        # trailing continuation: accept directly or via one final block
        self._cont_end = self._accepting | (
            self._boolmat(mark1) @ self._accepting.astype(np.float32) > 0.5
        )
        self._char_tables_cache: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        #: (slp.serial, node) -> (σ, T, T_em) where T_em only counts runs with
        #: at least one marker emission (the enumeration pruning matrix)
        self._node_data: dict[
            tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        #: serial -> finalizer purging that arena's entries on collection,
        #: so a long-lived evaluator does not pin dead arenas' matrices
        self._arena_finalizers: dict[int, weakref.finalize] = {}

    # ------------------------------------------------------------------
    # matrices
    # ------------------------------------------------------------------
    @staticmethod
    def _boolmat(matrix: np.ndarray) -> np.ndarray:
        return matrix.astype(np.float32)

    def _char_tables(self, ch: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(σ, T, T_em) for a single character."""
        cached = self._char_tables_cache.get(ch)
        if cached is not None:
            return cached
        det = self.det
        q = det.num_states
        sigma = np.full(q, _DEAD, dtype=np.int64)
        atom = det.atoms.classify(ch)
        step = np.zeros((q, q), dtype=bool)
        if atom is not None:
            for state in range(q):
                target = det.char_trans[state].get(atom)
                if target is not None:
                    sigma[state] = target
                    step[state, target] = True
        T = (self._boolmat(self._mark1) @ self._boolmat(step)) > 0.5
        T_em = (self._boolmat(self._mark_e) @ self._boolmat(step)) > 0.5
        self._char_tables_cache[ch] = (sigma, T, T_em)
        return sigma, T, T_em

    @staticmethod
    def _compose_pure(sigma: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Rows of *matrix* pulled through the pure function σ (dead → 0-row)."""
        gathered = matrix[np.where(sigma == _DEAD, 0, sigma)]
        gathered[sigma == _DEAD] = False
        return gathered

    def preprocess(self, slp: SLP, node: int, budget=None) -> int:
        """Compute (σ, T, T_em) for every reachable node; returns the number
        of *fresh* nodes processed (0 when everything was already cached).

        An optional :class:`~repro.util.Budget` is charged one step per
        fresh node (each step is an O(|Q|³) matrix product).

        With :mod:`repro.obs` enabled, cache effectiveness
        (``slp.eval.cache_hits`` / ``slp.eval.cache_misses``) and the time
        spent in the matrix kernel (``slp.eval.kernel_ns``) are recorded —
        the instrumentation runs once per call, outside the node loop."""
        observing = obs.enabled()
        t0 = time.perf_counter_ns() if observing else 0
        serial = slp.serial
        if serial not in self._arena_finalizers:
            self._arena_finalizers[serial] = weakref.finalize(
                slp, self._purge_arena, serial
            )
        nodes = slp.topological(node)
        fresh = 0
        for current in nodes:
            key = (slp.serial, current)
            if key in self._node_data:
                continue
            fresh += 1
            if budget is not None:
                budget.step()
            if slp.is_terminal(current):
                self._node_data[key] = self._char_tables(slp.char(current))
                continue
            left, right = slp.children(current)
            sigma_l, t_l, t_em_l = self._node_data[(slp.serial, left)]
            sigma_r, t_r, t_em_r = self._node_data[(slp.serial, right)]
            sigma = np.where(sigma_l == _DEAD, _DEAD, sigma_r[sigma_l])
            T = (self._boolmat(t_l) @ self._boolmat(t_r)) > 0.5
            # ≥1 emission: left emits (right any), or left pure + right emits
            T_em = (
                (self._boolmat(t_em_l) @ self._boolmat(t_r)) > 0.5
            ) | self._compose_pure(sigma_l, t_em_r)
            self._node_data[key] = (sigma, T, T_em)
        if observing:
            registry = obs.metrics()
            registry.counter("slp.eval.cache_misses").inc(fresh)
            registry.counter("slp.eval.cache_hits").inc(len(nodes) - fresh)
            registry.counter("slp.eval.kernel_ns").inc(
                time.perf_counter_ns() - t0
            )
        return fresh

    def cached_nodes(self) -> int:
        """How many (SLP node → matrices) entries are cached."""
        return len(self._node_data)

    def _purge_arena(self, serial: int) -> None:
        """Drop every cached entry of a collected arena (weakref callback)."""
        self._arena_finalizers.pop(serial, None)
        stale = [key for key in self._node_data if key[0] == serial]
        for key in stale:
            del self._node_data[key]

    def invalidate_from(self, slp: SLP, mark: int) -> int:
        """Drop cached matrices for nodes of *slp* with id ``>= mark``.

        Transaction rollback truncates the arena back to a mark; node ids
        at or above it will be *reused* by later allocations, so any cached
        matrices keyed on them would silently describe the wrong document.
        Returns the number of entries dropped."""
        slp_id = slp.serial
        stale = [
            key for key in self._node_data
            if key[0] == slp_id and key[1] >= mark
        ]
        for key in stale:
            del self._node_data[key]
        return len(stale)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_nonempty(self, slp: SLP, node: int, budget=None) -> bool:
        """``⟦M⟧(D(node)) ≠ ∅`` without decompression: one T-product chain."""
        self.preprocess(slp, node, budget)
        _, T, _ = self._node_data[(slp.serial, node)]
        reachable = T[self.det.initial]
        return bool((reachable & self._cont_end).any())

    def enumerate(self, slp: SLP, node: int, budget=None) -> Iterator[SpanTuple]:
        """Enumerate ``⟦M⟧(D(node))`` with delay O(depth · |Q|^2).

        When a :class:`~repro.util.Budget` is given, one step is charged
        per DAG descent, so a deadline or step limit terminates even the
        enumeration of an exponentially long document cleanly.

        With :mod:`repro.obs` enabled, per-tuple delays land in the
        ``slp.eval.delay_ns`` histogram under an ``slp.eval.enumerate``
        span (the O(log |D|)-delay claim, measured)."""
        stream = self._enumerate_impl(slp, node, budget)
        if not obs.enabled():
            yield from stream
            return
        profiler = DelayProfiler(obs.metrics().histogram("slp.eval.delay_ns"))
        with obs.tracer().span("slp.eval.enumerate", doc_length=slp.length(node)):
            yield from profiler.wrap(stream)

    def _enumerate_impl(self, slp: SLP, node: int, budget=None) -> Iterator[SpanTuple]:
        self.preprocess(slp, node, budget)
        det = self.det
        n = slp.length(node)
        key = (slp.serial, node)
        sigma_root, _, _ = self._node_data[key]

        def trailing(q_out: int, emissions: tuple) -> Iterator[tuple]:
            if self._accepting[q_out]:
                yield emissions
            for block, target in det.set_trans[q_out].items():
                if self._accepting[target]:
                    yield emissions + tuple((n + 1, m) for m in block)

        # pure run over the whole document
        q_end = int(sigma_root[det.initial])
        if q_end != _DEAD:
            yield from map(emissions_to_tuple, trailing(q_end, ()))
        # runs with at least one emission strictly inside (or at the left
        # boundary of) the document
        for q_out, emissions in self._runs(
            slp, node, det.initial, 0, self._cont_end, budget
        ):
            yield from map(emissions_to_tuple, trailing(q_out, emissions))

    def evaluate(self, slp: SLP, node: int, budget=None) -> SpanRelation:
        return SpanRelation(
            self.det.variables, self.enumerate(slp, node, budget)
        )

    # ------------------------------------------------------------------
    # decompressed fallback (the degraded path of repro.serve)
    # ------------------------------------------------------------------
    def evaluate_text(self, text: str, budget=None) -> SpanRelation:
        """Evaluate the *same* spanner on raw, decompressed text.

        Backward dynamic programming over the deterministic eVA and the
        plain string — no SLP, no per-node matrix cache, no shared state.
        This is the graceful-degradation path of :mod:`repro.serve`: when
        the circuit breaker trips on the compressed evaluator, queries are
        answered from the decompressed document instead.  Results are
        tuple-for-tuple identical to :meth:`evaluate` (asserted by the
        differential fuzz suite); the price is O(|D| · |Q|) work instead
        of O(log |D|) delay — latency, not correctness.

        A :class:`~repro.util.Budget` is charged ``|Q|`` steps per
        document position, so deadlines and step limits govern this path
        exactly like the compressed one."""
        det = self.det
        q = det.num_states
        n = len(text)

        def with_blocks(after_block: list[set], position: int) -> list[set]:
            # prepend the optional marker block at *position* (1-based)
            full = [set(suffixes) for suffixes in after_block]
            for state in range(q):
                for block, target in det.set_trans[state].items():
                    if not after_block[target]:
                        continue
                    emitted = frozenset((position, m) for m in block)
                    full[state].update(
                        emitted | suffix for suffix in after_block[target]
                    )
            return full

        after_block: list[set] = [
            {frozenset()} if self._accepting[state] else set()
            for state in range(q)
        ]
        full = with_blocks(after_block, n + 1)
        for position in range(n - 1, -1, -1):
            if budget is not None:
                budget.step(q)
            atom = det.atoms.classify(text[position])
            after_block = [set() for _ in range(q)]
            if atom is not None:
                for state in range(q):
                    target = det.char_trans[state].get(atom)
                    if target is not None:
                        after_block[state] |= full[target]
            full = with_blocks(after_block, position + 1)
        return SpanRelation(
            det.variables, map(emissions_to_tuple, full[det.initial])
        )

    # ------------------------------------------------------------------
    def _runs(
        self,
        slp: SLP,
        node: int,
        state: int,
        offset: int,
        cont: np.ndarray,
        budget=None,
    ) -> Iterator[tuple[int, tuple]]:
        """All runs through ``D(node)`` from *state* with ≥ 1 emission whose
        exit state satisfies *cont*, as (exit state, emissions) pairs.

        Pruning invariant: a recursive call is made only when its subtree is
        guaranteed (via the T_em matrices) to produce at least one output,
        so the work between two consecutive outputs is O(depth · |Q|²) —
        the O(log |D|) delay of [39] on balanced SLPs.
        """
        det = self.det
        if budget is not None:
            budget.step()
        if slp.is_terminal(node):
            ch = slp.char(node)
            atom = det.atoms.classify(ch)
            if atom is None:
                return
            for block, mid in det.set_trans[state].items():
                target = det.char_trans[mid].get(atom)
                if target is not None and cont[target]:
                    yield target, tuple((offset + 1, m) for m in block)
            return
        left, right = slp.children(node)
        sigma_l, _, t_em_l = self._node_data[(slp.serial, left)]
        sigma_r, t_r, t_em_r = self._node_data[(slp.serial, right)]
        left_length = slp.length(left)
        # continuation for the left part: exits p that R can carry to cont
        cont_f32 = cont.astype(np.float32)
        cont_left = (self._boolmat(t_r) @ cont_f32) > 0.5
        if bool((t_em_l[state] & cont_left).any()):
            cont_right_em = (self._boolmat(t_em_r) @ cont_f32) > 0.5
            for p, emissions in self._runs(
                slp, left, state, offset, cont_left, budget
            ):
                pure_exit = int(sigma_r[p])
                if pure_exit != _DEAD and cont[pure_exit]:
                    yield pure_exit, emissions
                if cont_right_em[p]:
                    for q_out, more in self._runs(
                        slp, right, p, offset + left_length, cont, budget
                    ):
                        yield q_out, emissions + more
        pure_mid = int(sigma_l[state])
        if pure_mid != _DEAD and bool((t_em_r[pure_mid] & cont).any()):
            yield from self._runs(
                slp, right, pure_mid, offset + left_length, cont, budget
            )
