"""Regular spanner evaluation over SLP-compressed documents
(paper Section 4.2; Schmid & Schweikardt [39], updates as in [40]).

The algorithm generalises the compressed membership test: for a
*deterministic* extended vset-automaton with state set Q and every SLP node
A we precompute

* ``σ_A`` — the *pure* transition function: the state reached by reading
  ``D(A)`` with **no** marker emissions (a partial function Q → Q, because
  the automaton is deterministic over characters);
* ``T_A`` — the boolean reachability matrix allowing arbitrary marker
  emissions inside ``D(A)`` (one block per position, the left boundary
  owned by A, the right boundary by A's context); for a pair node
  ``T_A = T_B · T_C`` exactly as in the membership warm-up.

Preprocessing is ``O(|S| · |Q|^3)`` — linear in the *compressed* size, the
[39] bound.  Enumeration then walks the DAG top-down: marker-free stretches
are skipped wholesale through ``σ``, the recursion only descends towards
positions where an emission that can still reach acceptance happens
(pruned with ``T``-matrix/continuation-vector products), and each output
tuple therefore costs ``O(depth · |Q|^2)`` — i.e. **O(log |D|) delay** on
balanced SLPs, independent of the compressibility of the document.

All matrices live on :mod:`repro.kernels.bitmat`: σ stays an int64 pure
transition function, while ``T`` and ``T_em`` are packed
:class:`~repro.kernels.bitmat.BitMatrix` rows.  Three facts make this fast:

* ``T = T_em ∪ σ`` — a run either emits at least one marker (``T_em``) or
  none (exactly the σ bit), so only *one* product per pair node is needed
  where the seed computed two;
* pair nodes of equal depth are independent, so preprocessing multiplies
  them as one *wave* through :func:`~repro.kernels.bitmat.bool_mm_many`,
  which batches the BLAS call and collapses duplicate operand pairs
  (repetitive documents — the reason SLPs exist — repeat most products
  verbatim);
* the per-descent pruning products in enumeration become packed row/word
  operations with **zero dtype conversions on the hot path**.

Because matrices are memoised per node and CDE editing only creates
O(|φ| · log d) fresh nodes (sharing the rest), evaluating a spanner on an
edited document only pays for the fresh nodes — the dynamic behaviour of
[40] (experiment C4).  *Discovery* is incremental too: fully preprocessed
roots are **sealed**, a repeat query on a sealed root skips the
topological walk entirely (O(1)), and an unsealed root's walk stops at
sealed children — so after an edit or append even *finding* the fresh
nodes costs O(fresh + log n), never a full-document rescan (the
``slp.eval.walk_visited`` / ``walk_skipped`` / ``sealed_hits`` counters
make this measurable, benchmark DYN1/DYN2).
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro import obs
from repro.automata.evset import DeterministicEVA, ExtendedVSetAutomaton
from repro.core.spans import SpanRelation, SpanTuple
from repro.enumeration.naive import emissions_to_tuple
from repro.kernels.bitmat import (
    BitMatrix,
    PackedVec,
    bool_mm,
    bool_mm_many,
    compose_rows,
    function_bits,
    function_bits_many,
    intern_many,
    matvec,
)
from repro.obs.profile import DelayProfiler
from repro.slp.slp import SLP

__all__ = ["SLPSpannerEvaluator"]

_DEAD = -1

#: bound on per-automaton cached characters (LRU) — generous for text
#: alphabets, hard cap for adversarial unicode streams
_CHAR_TABLE_LIMIT = 512


class _CharTableStore:
    """Per-automaton char tables: bounded LRU, shared between evaluators.

    One store exists per :class:`DeterministicEVA` *instance* (see
    :func:`_char_table_store`); every evaluator compiled from that
    automaton reads the same tables, so N evaluators pay for each
    character once instead of N times, and the LRU bound stops an
    adversarial alphabet from growing the cache without limit.  Holds the
    automaton's *components* (not the automaton itself) so the registry's
    weak keying can still collect the automaton."""

    __slots__ = ("q", "atoms", "char_trans", "mark_e", "_tables", "_lock")

    def __init__(self, det: DeterministicEVA) -> None:
        q = det.num_states
        self.q = q
        self.atoms = det.atoms
        self.char_trans = det.char_trans
        mark_e = np.zeros((q, q), dtype=bool)
        for state in range(q):
            for target in det.set_trans[state].values():
                mark_e[state, target] = True
        self.mark_e = BitMatrix.from_bool(mark_e)
        self._tables: OrderedDict[
            str, tuple[np.ndarray, BitMatrix, BitMatrix]
        ] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, ch: str) -> tuple[np.ndarray, BitMatrix, BitMatrix]:
        """(σ, T, T_em) for a single character."""
        with self._lock:
            cached = self._tables.get(ch)
            if cached is not None:
                self._tables.move_to_end(ch)
                return cached
            q = self.q
            sigma = np.full(q, _DEAD, dtype=np.int64)
            atom = self.atoms.classify(ch)
            if atom is not None:
                for state in range(q):
                    target = self.char_trans[state].get(atom)
                    if target is not None:
                        sigma[state] = target
            step = function_bits(sigma, q)
            # T = Mark1 · step = (I ∪ MarkE) · step = step ∪ T_em
            t_em = bool_mm(self.mark_e, step)
            t = BitMatrix(t_em.rows | step.rows, q)
            entry = (sigma, t, t_em)
            self._tables[ch] = entry
            while len(self._tables) > _CHAR_TABLE_LIMIT:
                self._tables.popitem(last=False)
            return entry

    def nbytes(self) -> int:
        with self._lock:
            return sum(
                sigma.nbytes + t.rows.nbytes + t_em.rows.nbytes
                for sigma, t, t_em in self._tables.values()
            )


_char_table_stores: "weakref.WeakKeyDictionary[DeterministicEVA, _CharTableStore]"
_char_table_stores = weakref.WeakKeyDictionary()
_char_table_stores_lock = threading.Lock()


def _char_table_store(det: DeterministicEVA) -> _CharTableStore:
    with _char_table_stores_lock:
        store = _char_table_stores.get(det)
        if store is None:
            store = _CharTableStore(det)
            _char_table_stores[det] = store
        return store


class SLPSpannerEvaluator:
    """Compressed evaluation of one regular spanner over SLP documents."""

    def __init__(self, spanner) -> None:
        if isinstance(spanner, DeterministicEVA):
            det = spanner
        elif isinstance(spanner, ExtendedVSetAutomaton):
            det = spanner.determinize()
        else:
            det = ExtendedVSetAutomaton.from_vset(spanner).determinize()
        self.det = det
        q = det.num_states
        #: char tables are shared per deterministic automaton (bounded LRU)
        self._char_tables_cache = _char_table_store(det)
        mark_e = self._char_tables_cache.mark_e.to_bool()
        self._accepting = np.zeros(q, dtype=bool)
        for state in det.accepting:
            self._accepting[state] = True
        # trailing continuation: accept directly or via one final block
        self._cont_end = PackedVec(
            self._accepting | mark_e @ self._accepting
        )
        #: two-level cache index: serial -> node -> (σ, T, T_em), where
        #: T_em only counts runs with at least one marker emission (the
        #: enumeration pruning matrix).  Keying by arena first keeps every
        #: maintenance operation — rollback invalidation, dead-arena
        #: purge, per-store stats — O(that arena's own entries) instead of
        #: O(the total cache across all arenas sharing this evaluator.
        self._arena_entries: dict[
            int, dict[int, tuple[np.ndarray, BitMatrix, BitMatrix]]
        ] = {}
        #: serial -> resident packed bytes of that arena's entries (the
        #: per-spanner figure :meth:`repro.db.SpannerDB.stats` reports)
        self._arena_bytes: dict[int, int] = {}
        #: serial -> node ids whose *entire subtree* is cached ("sealed").
        #: A sealed root answers a repeat preprocess in O(1) and the
        #: discovery walk never descends below a sealed node, so after an
        #: edit (arena mutations only append nodes) discovery costs
        #: O(fresh + log n), not O(n).  Sealing is conservative: a node is
        #: sealed only once a completed walk has verified its entry and
        #: both children sealed, bottom-up.  Invalidation drops sealed
        #: ids exactly like entries (rollback reuses node ids).
        self._sealed: dict[int, set[int]] = {}
        self._resident_bytes = 0
        #: serial -> finalizer purging that arena's entries on collection,
        #: so a long-lived evaluator does not pin dead arenas' matrices
        self._arena_finalizers: dict[int, weakref.finalize] = {}

    # ------------------------------------------------------------------
    # matrices
    # ------------------------------------------------------------------
    def _char_tables(self, ch: str) -> tuple[np.ndarray, BitMatrix, BitMatrix]:
        return self._char_tables_cache.get(ch)

    def char_entries(
        self, chars
    ) -> dict[str, tuple[np.ndarray, BitMatrix, BitMatrix]]:
        """``{ch: (σ, T, T_em)}`` for every distinct character of *chars*.

        Prefetches through the shared per-automaton store — one lock
        acquisition per *distinct* character — so shard workers in
        :mod:`repro.parallel` read a plain dict instead of contending on
        the store lock once per document position."""
        return {ch: self._char_tables_cache.get(ch) for ch in set(chars)}

    def _store(
        self, serial: int, node: int,
        entry: tuple[np.ndarray, BitMatrix, BitMatrix],
    ) -> None:
        self._arena_entries.setdefault(serial, {})[node] = entry
        sigma, t, t_em = entry
        nbytes = sigma.nbytes + t.rows.nbytes + t_em.rows.nbytes
        self._resident_bytes += nbytes
        self._arena_bytes[serial] = self._arena_bytes.get(serial, 0) + nbytes

    def _drop(self, serial: int, node: int) -> None:
        sigma, t, t_em = self._arena_entries[serial].pop(node)
        nbytes = sigma.nbytes + t.rows.nbytes + t_em.rows.nbytes
        self._resident_bytes -= nbytes
        self._arena_bytes[serial] -= nbytes

    def preprocess(self, slp: SLP, node: int, budget=None) -> int:
        """Compute (σ, T, T_em) for every reachable node; returns the number
        of *fresh* nodes processed (0 when everything was already cached).

        An optional :class:`~repro.util.Budget` is charged one step per
        fresh node (each step is an O(|Q|³) matrix product).

        Discovery is **incremental**: a repeat call on a *sealed* root
        (one whose whole subtree is cached) returns in O(1) without any
        walk, and an unsealed root's discovery walk stops at sealed
        children — after a CDE edit or append (which only allocate fresh
        arena nodes) the walk visits O(fresh + log n) nodes, never the
        whole document.  The wave computation itself lives in
        :meth:`compute_entries` (pure — no evaluator state is touched)
        and the results are adopted through :meth:`merge_entries`;
        :mod:`repro.parallel` uses the same two halves to fan the
        computation of several documents out across worker threads and
        merge (then seal) on the caller's thread.

        With :mod:`repro.obs` enabled, cache effectiveness
        (``slp.eval.cache_hits`` / ``slp.eval.cache_misses``), discovery
        cost (``slp.eval.walk_visited`` / ``slp.eval.walk_skipped`` /
        ``slp.eval.sealed_hits``) and the time spent in the matrix kernel
        (``slp.eval.kernel_ns``) are recorded — the instrumentation runs
        once per call, outside the node loop."""
        observing = obs.enabled()
        serial = slp.serial
        if node in self._sealed.get(serial, ()):
            # sealed root: everything reachable is cached — no walk at all
            if observing:
                registry = obs.metrics()
                registry.counter("slp.eval.sealed_hits").inc()
                registry.counter("slp.eval.cache_hits").inc()
            return 0
        t0 = time.perf_counter_ns() if observing else 0
        fresh_entries, walked, skipped = self._compute_frontier(
            slp, node, budget
        )
        fresh = self.merge_entries(slp, fresh_entries)
        self._seal_walked(slp, walked)
        if observing:
            registry = obs.metrics()
            registry.counter("slp.eval.cache_misses").inc(fresh)
            registry.counter("slp.eval.cache_hits").inc(len(walked) - fresh)
            registry.counter("slp.eval.walk_visited").inc(len(walked))
            registry.counter("slp.eval.walk_skipped").inc(skipped)
            registry.counter("slp.eval.kernel_ns").inc(
                time.perf_counter_ns() - t0
            )
        return fresh

    def ensure_finalizer(self, slp: SLP) -> None:
        """Arm the purge-on-collection hook for *slp*'s arena (idempotent).

        Must run on the thread that owns the evaluator before worker
        threads start producing entries for that arena."""
        serial = slp.serial
        if serial not in self._arena_finalizers:
            self._arena_finalizers[serial] = weakref.finalize(
                slp, self._purge_arena, serial
            )

    def merge_entries(self, slp: SLP, fresh_entries: dict) -> int:
        """Adopt entries produced by :meth:`compute_entries`; returns how
        many were actually added (keys another merge beat us to are kept
        as-is — entries for one node are interchangeable pure values)."""
        self.ensure_finalizer(slp)
        arena = self._arena_entries.setdefault(slp.serial, {})
        added = 0
        for (serial, node), entry in fresh_entries.items():
            if node not in arena:
                self._store(serial, node, entry)
                added += 1
        return added

    def _seal_walked(self, slp: SLP, walked: list[int]) -> None:
        """Seal every walked node whose subtree is now fully cached.

        *walked* is the bottom-up discovery order of one completed
        frontier walk, so children precede parents and every child of a
        walked pair node is either earlier in the list or was already
        sealed (the walk stops only at sealed nodes).  Sealing therefore
        propagates in one linear pass; the entry-present check keeps it
        conservative should a caller ever merge a non-closed entry set."""
        serial = slp.serial
        arena = self._arena_entries.get(serial)
        if arena is None:
            return
        sealed = self._sealed.setdefault(serial, set())
        is_terminal = slp.is_terminal
        children = slp.children
        for current in walked:
            if current not in arena:
                continue
            if is_terminal(current):
                sealed.add(current)
                continue
            left, right = children(current)
            if left in sealed and right in sealed:
                sealed.add(current)

    def seal_subtree(self, slp: SLP, node: int) -> bool:
        """Walk *node*'s unsealed frontier and seal every subtree whose
        entries are fully cached; returns whether *node* itself is sealed.

        The post-merge half of :func:`repro.parallel.preprocess_bulk`:
        workers compute entries without mutating the evaluator, the owner
        thread merges them, then seals each document root so later
        queries take the O(1) sealed path."""
        serial = slp.serial
        sealed = self._sealed.get(serial)
        if sealed is not None and node in sealed:
            return True
        walked, _ = slp.frontier(node, self._sealed.get(serial, ()))
        self._seal_walked(slp, walked)
        return node in self._sealed.get(serial, ())

    def is_sealed(self, slp: SLP, node: int) -> bool:
        """Is *node*'s entire subtree cached (the O(1) repeat path)?"""
        return node in self._sealed.get(slp.serial, ())

    def sealed_nodes(self, serial: int | None = None) -> int:
        """How many nodes are sealed; restricted to one arena when
        *serial* is given (O(1) either way)."""
        if serial is None:
            return sum(len(sealed) for sealed in self._sealed.values())
        return len(self._sealed.get(serial, ()))

    def compute_entries(
        self, slp: SLP, node: int, budget=None
    ) -> tuple[dict, int]:
        """The wave computation of :meth:`preprocess`, as a pure function:
        ``(fresh_entries, visited)`` where *fresh_entries* maps
        ``(serial, node) -> (σ, T, T_em)`` for every reachable node not
        already cached, and *visited* counts the nodes the discovery walk
        actually examined (sealed subtrees are skipped wholesale, so on a
        warm cache this is O(fresh + log n), not O(n)).

        Nothing on the evaluator is mutated, and the shared node cache is
        only *read* — so any number of threads may run this concurrently
        (one per document, say) provided no thread mutates the evaluator
        meanwhile; each then adopts its results via :meth:`merge_entries`
        on the owning thread.  Documents sharing subtrees may compute a
        shared node's entry more than once; the merge keeps one copy.

        Fresh pair nodes are grouped into *waves* of equal depth (all
        operands already computed) and each wave's products run as one
        batched, duplicate-collapsing kernel call —
        :func:`repro.kernels.bitmat.bool_mm_many`.  Only ``T_em`` is ever
        multiplied: ``T = T_em ∪ σ`` recovers the full reachability matrix
        as a word-level union."""
        fresh_entries, walked, _ = self._compute_frontier(slp, node, budget)
        return fresh_entries, len(walked)

    def _compute_frontier(
        self, slp: SLP, node: int, budget=None
    ) -> tuple[dict, list[int], int]:
        """:meth:`compute_entries` plus the walk itself:
        ``(fresh_entries, walked, skipped)`` where *walked* is the
        bottom-up discovery order (what :meth:`_seal_walked` consumes)
        and *skipped* counts the sealed nodes the walk stopped at."""
        serial = slp.serial
        nodes, skipped = slp.frontier(node, self._sealed.get(serial, ()))
        data = self._arena_entries.get(serial, {})
        fresh_entries: dict[
            tuple[int, int], tuple[np.ndarray, BitMatrix, BitMatrix]
        ] = {}
        level: dict[int, int] = {}
        waves: list[list[tuple[int, int, int]]] = []
        for current in nodes:
            if current in data:
                continue
            if budget is not None:
                budget.step()
            if slp.is_terminal(current):
                fresh_entries[(serial, current)] = self._char_tables(
                    slp.char(current)
                )
                continue
            left, right = slp.children(current)
            depth = max(level.get(left, 0), level.get(right, 0)) + 1
            level[current] = depth
            if depth > len(waves):
                waves.append([])
            waves[depth - 1].append((current, left, right))
        q = self.det.num_states
        # One intern pool per pass: node matrices that come out equal
        # (different subtrees, same behaviour) become one object, so the
        # identity grouping inside bool_mm_many collapses every later
        # wave's repeated products.
        intern: dict = {}
        # entry-level canonicalisation: nodes with identical (σ, T, T_em)
        # share one tuple object, which is what makes the identity
        # grouping below collapse duplicate nodes in *later* waves
        entry_pool: dict = {}
        for wave in waves:
            # Node-level identity dedup: two nodes whose operand entries
            # are the same objects (the normal case once matrices are
            # interned) get one computed (σ, T, T_em), and every batched
            # step below runs on distinct groups only.
            group_of: dict[tuple[int, int], int] = {}
            node_group: list[int] = []
            distinct_l: list[tuple] = []
            distinct_r: list[tuple] = []
            for current, left, right in wave:
                entry_l = data.get(left)
                if entry_l is None:
                    entry_l = fresh_entries[(serial, left)]
                entry_r = data.get(right)
                if entry_r is None:
                    entry_r = fresh_entries[(serial, right)]
                ident = (id(entry_l), id(entry_r))
                g = group_of.get(ident)
                if g is None:
                    g = len(distinct_l)
                    group_of[ident] = g
                    distinct_l.append(entry_l)
                    distinct_r.append(entry_r)
                node_group.append(g)
            products = [
                (entry_l[2], entry_r[1])
                for entry_l, entry_r in zip(distinct_l, distinct_r)
            ]
            sig_l = np.stack([entry_l[0] for entry_l in distinct_l])
            sig_r = np.stack([entry_r[0] for entry_r in distinct_r])
            em_r_rows = [entry_r[2].rows for entry_r in distinct_r]
            results = bool_mm_many(products, intern=intern)
            # batched across the wave: σ composition, the σ_L-pull of the
            # right T_em (≥1 emission: left emits · right any, or left pure
            # · right emits), and T = T_em ∪ σ (no emission is exactly the
            # σ bit — the identity that saves the second matrix product)
            dead_l = sig_l == _DEAD
            sigma_all = np.where(
                dead_l, _DEAD, np.take_along_axis(sig_r, np.where(dead_l, 0, sig_l), axis=1)
            )
            pulled = np.stack(em_r_rows)
            pulled = np.take_along_axis(
                pulled, np.where(dead_l, 0, sig_l)[:, :, None], axis=1
            )
            pulled[dead_l] = 0
            t_em_rows = np.stack([prod.rows for prod in results]) | pulled
            t_rows = t_em_rows | function_bits_many(sigma_all, q)
            d = len(distinct_l)
            t_em_all = intern_many(
                intern, [BitMatrix(t_em_rows[k], q) for k in range(d)]
            )
            t_all = intern_many(
                intern, [BitMatrix(t_rows[k], q) for k in range(d)]
            )
            entries = []
            for k in range(d):
                ekey = (
                    id(t_all[k]),
                    id(t_em_all[k]),
                    sigma_all[k].tobytes(),
                )
                entry = entry_pool.get(ekey)
                if entry is None:
                    entry = (sigma_all[k], t_all[k], t_em_all[k])
                    entry_pool[ekey] = entry
                entries.append(entry)
            for (current, _, _), g in zip(wave, node_group):
                fresh_entries[(serial, current)] = entries[g]
        # pair matrices stay resident packed-only: drop the dense mirrors
        # the wave products accumulated (recomputed lazily if an
        # incremental preprocess later multiplies against them); char
        # tables keep theirs — they are the hottest operands and bounded
        # by the LRU
        for wave in waves:
            for current, _, _ in wave:
                _, t, t_em = fresh_entries[(serial, current)]
                t.release_dense()
                t_em.release_dense()
        return fresh_entries, nodes, skipped

    def cached_nodes(self, serial: int | None = None) -> int:
        """How many (SLP node → matrices) entries are cached; restricted to
        one arena when *serial* is given (O(1) either way — the per-arena
        index makes per-store stats free)."""
        if serial is None:
            return sum(len(arena) for arena in self._arena_entries.values())
        return len(self._arena_entries.get(serial, ()))

    def cached_node_ids(self, slp: SLP) -> list[int]:
        """The node ids of *slp* whose ``(σ, T, T_em)`` entry is cached
        (arbitrary order; O(this arena's entries), other arenas sharing
        the evaluator are never scanned).
        :func:`repro.parallel.preprocess_bulk` ships this set to
        process-backend workers so they return exactly the entries this
        evaluator lacks — however warm their own caches are."""
        return list(self._arena_entries.get(slp.serial, ()))

    def node_entry(self, slp: SLP, node: int):
        """The cached ``(σ, T, T_em)`` entry for one node, or ``None``."""
        arena = self._arena_entries.get(slp.serial)
        return arena.get(node) if arena is not None else None

    def cache_bytes(self) -> int:
        """Resident bytes of packed node matrices plus shared char tables."""
        return self._resident_bytes + self._char_tables_cache.nbytes()

    def arena_cache_stats(self, serial: int) -> dict:
        """``{"entries", "bytes", "sealed"}`` for one arena, in O(1).

        What :meth:`repro.db.SpannerDB.stats` reports per spanner — the
        per-arena index maintains the counts incrementally, so stats never
        scan the cache."""
        return {
            "entries": len(self._arena_entries.get(serial, ())),
            "bytes": self._arena_bytes.get(serial, 0),
            "sealed": len(self._sealed.get(serial, ())),
        }

    def _purge_arena(self, serial: int) -> None:
        """Drop every cached entry of a collected arena (weakref callback);
        O(that arena's entries) — other arenas are untouched, unscanned."""
        self._arena_finalizers.pop(serial, None)
        self._sealed.pop(serial, None)
        arena = self._arena_entries.pop(serial, None)
        if arena is not None:
            self._resident_bytes -= self._arena_bytes.pop(serial, 0)

    def invalidate_from(self, slp: SLP, mark: int) -> int:
        """Drop cached matrices for nodes of *slp* with id ``>= mark``.

        Transaction rollback truncates the arena back to a mark; node ids
        at or above it will be *reused* by later allocations, so any cached
        matrices keyed on them would silently describe the wrong document.
        Sealed ids at or above the mark are discarded with their entries —
        a stale sealed root would otherwise answer a repeat preprocess
        with matrices of the rolled-back document.  Sealed ids *below* the
        mark stay sealed: children always precede parents in the arena,
        so a surviving node's whole subtree also survives the truncation.
        O(this arena's own entries); returns the number dropped."""
        serial = slp.serial
        arena = self._arena_entries.get(serial)
        if arena is None:
            return 0
        stale = [node for node in arena if node >= mark]
        for node in stale:
            self._drop(serial, node)
        sealed = self._sealed.get(serial)
        if sealed is not None:
            self._sealed[serial] = {n for n in sealed if n < mark}
        return len(stale)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_nonempty(self, slp: SLP, node: int, budget=None) -> bool:
        """``⟦M⟧(D(node)) ≠ ∅`` without decompression: one T-product chain."""
        self.preprocess(slp, node, budget)
        return self.entry_is_nonempty(self._arena_entries[slp.serial][node])

    def entry_is_nonempty(self, entry) -> bool:
        """Does a whole-document ``(σ, T, T_em)`` entry admit any accepted
        run?  Same test as :meth:`is_nonempty`, for entries produced
        outside the node cache (e.g. the shard-parallel fold of
        :func:`repro.parallel.document_matrices`)."""
        _, T, _ = entry
        return T.row_and_any(self.det.initial, self._cont_end.words)

    def enumerate(self, slp: SLP, node: int, budget=None) -> Iterator[SpanTuple]:
        """Enumerate ``⟦M⟧(D(node))`` with delay O(depth · |Q|^2).

        When a :class:`~repro.util.Budget` is given, one step is charged
        per DAG descent, so a deadline or step limit terminates even the
        enumeration of an exponentially long document cleanly.

        With :mod:`repro.obs` enabled, per-tuple delays land in the
        ``slp.eval.delay_ns`` histogram under an ``slp.eval.enumerate``
        span (the O(log |D|)-delay claim, measured)."""
        stream = self._enumerate_impl(slp, node, budget)
        if not obs.enabled():
            yield from stream
            return
        profiler = DelayProfiler(obs.metrics().histogram("slp.eval.delay_ns"))
        with obs.tracer().span("slp.eval.enumerate", doc_length=slp.length(node)):
            yield from profiler.wrap(stream)

    def _enumerate_impl(self, slp: SLP, node: int, budget=None) -> Iterator[SpanTuple]:
        self.preprocess(slp, node, budget)
        det = self.det
        n = slp.length(node)
        sigma_root, _, _ = self._arena_entries[slp.serial][node]

        def trailing(q_out: int, emissions: tuple) -> Iterator[tuple]:
            if self._accepting[q_out]:
                yield emissions
            for block, target in det.set_trans[q_out].items():
                if self._accepting[target]:
                    yield emissions + tuple((n + 1, m) for m in block)

        # pure run over the whole document
        q_end = int(sigma_root[det.initial])
        if q_end != _DEAD:
            yield from map(emissions_to_tuple, trailing(q_end, ()))
        # runs with at least one emission strictly inside (or at the left
        # boundary of) the document
        for q_out, emissions in self._runs(
            slp, node, det.initial, 0, self._cont_end, budget
        ):
            yield from map(emissions_to_tuple, trailing(q_out, emissions))

    def evaluate(self, slp: SLP, node: int, budget=None) -> SpanRelation:
        return SpanRelation(
            self.det.variables, self.enumerate(slp, node, budget)
        )

    # ------------------------------------------------------------------
    # decompressed fallback (the degraded path of repro.serve)
    # ------------------------------------------------------------------
    def evaluate_text(self, text: str, budget=None) -> SpanRelation:
        """Evaluate the *same* spanner on raw, decompressed text.

        Backward dynamic programming over the deterministic eVA and the
        plain string — no SLP, no per-node matrix cache, no shared state.
        This is the graceful-degradation path of :mod:`repro.serve`: when
        the circuit breaker trips on the compressed evaluator, queries are
        answered from the decompressed document instead.  Results are
        tuple-for-tuple identical to :meth:`evaluate` (asserted by the
        differential fuzz suite); the price is O(|D| · |Q|) work instead
        of O(log |D|) delay — latency, not correctness.

        A :class:`~repro.util.Budget` is charged ``|Q|`` steps per
        document position, and — because the suffix-set layers are the
        memory hazard of this path — each materialised layer's size is
        charged through ``Budget.charge_bytes``, so a memory budget
        governs this path exactly like the compressed one.  Layers are
        sparse dicts: states with no surviving continuation are pruned
        instead of carrying empty sets across the whole document."""
        det = self.det
        q = det.num_states
        n = len(text)

        def charge(layer: dict[int, set]) -> None:
            if budget is None:
                return
            suffixes = sum(len(sets) for sets in layer.values())
            emissions = sum(
                len(suffix) for sets in layer.values() for suffix in sets
            )
            # dict/set/frozenset overhead dominates the 16-byte span pairs
            budget.charge_bytes(
                64 * suffixes + 16 * emissions, what="evaluate_text layer"
            )

        def with_blocks(after_block: dict[int, set], position: int) -> dict[int, set]:
            # prepend the optional marker block at *position* (1-based)
            full = {state: set(sets) for state, sets in after_block.items()}
            for state in range(q):
                additions = None
                for block, target in det.set_trans[state].items():
                    suffixes = after_block.get(target)
                    if not suffixes:
                        continue
                    emitted = frozenset((position, m) for m in block)
                    if additions is None:
                        additions = set()
                    additions.update(emitted | suffix for suffix in suffixes)
                if additions:
                    full.setdefault(state, set()).update(additions)
            return full

        after_block: dict[int, set] = {
            state: {frozenset()}
            for state in range(q)
            if self._accepting[state]
        }
        full = with_blocks(after_block, n + 1)
        charge(full)
        for position in range(n - 1, -1, -1):
            if budget is not None:
                budget.step(q)
            atom = det.atoms.classify(text[position])
            after_block = {}
            if atom is not None:
                for state in range(q):
                    target = det.char_trans[state].get(atom)
                    if target is None:
                        continue
                    suffixes = full.get(target)
                    if suffixes:
                        after_block.setdefault(state, set()).update(suffixes)
            full = with_blocks(after_block, position + 1)
            charge(full)
        return SpanRelation(
            det.variables,
            map(emissions_to_tuple, full.get(det.initial, ())),
        )

    # ------------------------------------------------------------------
    def _runs(
        self,
        slp: SLP,
        node: int,
        state: int,
        offset: int,
        cont: PackedVec,
        budget=None,
    ) -> Iterator[tuple[int, tuple]]:
        """All runs through ``D(node)`` from *state* with ≥ 1 emission whose
        exit state satisfies *cont*, as (exit state, emissions) pairs.

        Pruning invariant: a descent happens only when its subtree is
        guaranteed (via the T_em matrices) to produce at least one output,
        so the work between two consecutive outputs is O(depth · |Q|²) —
        the O(log |D|) delay of [39] on balanced SLPs.

        The DFS is an explicit LIFO of two task kinds (deep or adversarially
        unbalanced SLPs must not hit the interpreter recursion limit):

        * ``expand`` — enumerate the runs of one subtree from one entry
          state, with the pending right-context chain alongside;
        * ``resolve`` — feed one produced run through that chain: exit the
          pair purely through σ_R (no further emissions on the right) and/or
          descend into the right child for the emitting completions.

        The pruning tests are packed row/word intersections and
        :func:`~repro.kernels.bitmat.matvec` products — no float32
        conversions anywhere on this path."""
        det = self.det
        #: single-level per-arena view — the hot descent loop below does
        #: one plain-int dict lookup per child instead of building
        #: (serial, node) tuple keys
        data = self._arena_entries[slp.serial]
        atoms = det.atoms
        char_trans = det.char_trans
        set_trans = det.set_trans
        is_terminal = slp.is_terminal
        # rights chain record: (σ_R, right node, right offset, cont after the
        # pair, emitting-continuation bools for the right child, tail)
        _EXPAND, _RESOLVE = 0, 1
        stack: list[tuple] = [(_EXPAND, node, state, offset, (), cont, None)]
        while stack:
            task = stack.pop()
            if task[0] == _RESOLVE:
                _, p, emissions, rights = task
                if rights is None:
                    yield p, emissions
                    continue
                sigma_r, rnode, roff, rcont, right_em, tail = rights
                # the emitting right-descent is pushed first so the pure
                # σ_R exit (pushed second, popped first) keeps the seed's
                # output order: pure completion before right-child runs
                if right_em[p]:
                    stack.append(
                        (_EXPAND, rnode, p, roff, emissions, rcont, tail)
                    )
                pure_exit = int(sigma_r[p])
                if pure_exit != _DEAD and rcont.bools[pure_exit]:
                    stack.append((_RESOLVE, pure_exit, emissions, tail))
                continue
            _, cur, cur_state, cur_offset, prefix, cur_cont, rights = task
            if budget is not None:
                budget.step()
            if is_terminal(cur):
                ch = slp.char(cur)
                atom = atoms.classify(ch)
                if atom is None:
                    continue
                produced = []
                for block, mid in set_trans[cur_state].items():
                    target = char_trans[mid].get(atom)
                    if target is not None and cur_cont.bools[target]:
                        produced.append(
                            (
                                _RESOLVE,
                                target,
                                prefix + tuple((cur_offset + 1, m) for m in block),
                                rights,
                            )
                        )
                stack.extend(reversed(produced))
                continue
            left, right = slp.children(cur)
            sigma_l, _, t_em_l = data[left]
            sigma_r, t_r, t_em_r = data[right]
            left_length = slp.length(left)
            # the pure-left branch (left consumed without emissions, all
            # emissions in the right child) is pushed first — it comes last
            pure_mid = int(sigma_l[cur_state])
            if pure_mid != _DEAD and t_em_r.row_and_any(
                pure_mid, cur_cont.words
            ):
                stack.append(
                    (
                        _EXPAND,
                        right,
                        pure_mid,
                        cur_offset + left_length,
                        prefix,
                        cur_cont,
                        rights,
                    )
                )
            # continuation for the left part: exits p that R can carry to cont
            cont_left = matvec(t_r, cur_cont)
            if t_em_l.row_and_any(cur_state, cont_left.words):
                right_em = matvec(t_em_r, cur_cont).bools
                stack.append(
                    (
                        _EXPAND,
                        left,
                        cur_state,
                        cur_offset,
                        prefix,
                        cont_left,
                        (
                            sigma_r,
                            right,
                            cur_offset + left_length,
                            cur_cont,
                            right_em,
                            rights,
                        ),
                    )
                )
