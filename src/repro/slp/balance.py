"""Balanced SLP primitives (paper Section 4.1 and the engine of 4.3).

The paper's complex-document-editing results rest on two primitives over
*strongly balanced* SLPs (every node has ``bal ∈ {−1, 0, 1}``, exactly the
AVL condition):

* :func:`concat_balanced` — concatenate two strongly balanced nodes into a
  strongly balanced node in ``O(|ord(a) − ord(b)|)`` new nodes, by the
  AVL-join construction (descend the taller operand's spine, attach, and
  re-balance with single/double rotations on the way back).  This is the
  [36]-style construction the paper describes for ``concat(D(B), D(C))``.
* :func:`split_balanced` — split a strongly balanced node at a position
  into two strongly balanced nodes in ``O(ord)`` concat steps; ``extract``,
  ``delete``, ``insert`` and ``copy`` all reduce to splits and concats.

Because the arena hash-conses, all of these are *persistent*: old documents
keep sharing the untouched subtrees, which is why a database of edited
versions stays small.

:func:`rebalance` converts an arbitrary SLP node into a strongly balanced
one (cost ``O(|S| · log |D|)`` — the paper notes the log factor cannot be
avoided [17]); :func:`assert_strongly_balanced` is the guard used by the
editing layer.
"""

from __future__ import annotations

from repro.errors import SLPError
from repro.slp.slp import SLP

__all__ = [
    "concat_balanced",
    "split_balanced",
    "extract_balanced",
    "rebalance",
    "assert_strongly_balanced",
]


def _balance_pair(slp: SLP, left: int, right: int) -> int:
    """Combine two strongly balanced nodes whose orders differ by ≤ 2,
    applying AVL rotations when the difference is exactly 2."""
    diff = slp.order(left) - slp.order(right)
    if -1 <= diff <= 1:
        return slp.pair(left, right)
    if diff == 2:
        ll, lr = slp.children(left)
        if slp.order(ll) >= slp.order(lr):
            # single right rotation: (ll lr) r -> ll (lr r)
            return slp.pair(ll, slp.pair(lr, right))
        # double rotation: lr = (lrl, lrr): (ll (lrl lrr)) r -> (ll lrl)(lrr r)
        lrl, lrr = slp.children(lr)
        return slp.pair(slp.pair(ll, lrl), slp.pair(lrr, right))
    if diff == -2:
        rl, rr = slp.children(right)
        if slp.order(rr) >= slp.order(rl):
            # single left rotation: l (rl rr) -> (l rl) rr
            return slp.pair(slp.pair(left, rl), rr)
        rll, rlr = slp.children(rl)
        return slp.pair(slp.pair(left, rll), slp.pair(rlr, rr))
    raise SLPError(
        f"_balance_pair got order difference {diff}; operands were not "
        f"strongly balanced"
    )


def concat_balanced(slp: SLP, left: int | None, right: int | None) -> int | None:
    """AVL-join of two strongly balanced nodes (``None`` = empty document).

    The result is strongly balanced and derives ``D(left)·D(right)``; the
    number of freshly created nodes is O(|ord(left) − ord(right)|), i.e.
    O(log) of the document lengths.
    """
    if left is None:
        return right
    if right is None:
        return left
    diff = slp.order(left) - slp.order(right)
    if -1 <= diff <= 1:
        return slp.pair(left, right)
    if diff > 1:
        l_child, r_child = slp.children(left)
        merged = concat_balanced(slp, r_child, right)
        return _balance_pair(slp, l_child, merged)
    l_child, r_child = slp.children(right)
    merged = concat_balanced(slp, left, l_child)
    return _balance_pair(slp, merged, r_child)


def split_balanced(
    slp: SLP, node: int, position: int
) -> tuple[int | None, int | None]:
    """Split ``D(node)`` after its first *position* characters.

    Returns ``(prefix, suffix)`` as strongly balanced nodes (``None`` for
    the empty side).  Requires ``0 <= position <= |D(node)|``.
    """
    length = slp.length(node)
    if not 0 <= position <= length:
        raise SLPError(
            f"split position {position} outside document of length {length}"
        )
    if position == 0:
        return None, node
    if position == length:
        return node, None
    left, right = slp.children(node)
    left_length = slp.length(left)
    if position <= left_length:
        prefix, middle = split_balanced(slp, left, position)
        return prefix, concat_balanced(slp, middle, right)
    middle, suffix = split_balanced(slp, right, position - left_length)
    return concat_balanced(slp, left, middle), suffix


def extract_balanced(slp: SLP, node: int, begin: int, end: int) -> int | None:
    """The strongly balanced node deriving ``D(node)[begin:end]``
    (0-based, half-open slice offsets; ``None`` if empty)."""
    if not 0 <= begin <= end <= slp.length(node):
        raise SLPError(f"bad extract range [{begin}, {end})")
    _, tail = split_balanced(slp, node, begin)
    if tail is None:
        return None
    middle, _ = split_balanced(slp, tail, end - begin)
    return middle


def rebalance(slp: SLP, node: int, _memo: dict[int, int] | None = None) -> int:
    """A strongly balanced node with the same derivation as *node*.

    Works bottom-up over the reachable sub-DAG with memoisation, so shared
    subtrees are rebalanced once; the worst-case cost carries the
    unavoidable log factor of [17].  Iterative, so degenerate chain SLPs of
    arbitrary depth are handled.
    """
    memo = _memo if _memo is not None else {}
    for current in slp.topological(node):
        if current in memo:
            continue
        if slp.is_terminal(current):
            memo[current] = current
            continue
        left, right = slp.children(current)
        balanced = concat_balanced(slp, memo[left], memo[right])
        assert balanced is not None
        memo[current] = balanced
    return memo[node]


def assert_strongly_balanced(slp: SLP, node: int) -> None:
    """Raise :class:`SLPError` unless *node* is strongly balanced."""
    if not slp.is_strongly_balanced(node):
        raise SLPError(
            "operation requires a strongly balanced SLP node; call "
            "rebalance() first"
        )
