"""SLP-compressed documents: representation, building, balancing, editing,
and spanner evaluation without decompression (paper Section 4)."""

from repro.slp.access import Fingerprinter, char_at, extract
from repro.slp.balance import (
    assert_strongly_balanced,
    concat_balanced,
    extract_balanced,
    rebalance,
    split_balanced,
)
from repro.slp.build import (
    balanced_node,
    fibonacci_node,
    lz78_node,
    power_node,
    repair_node,
    repeat_node,
)
from repro.slp.cde import (
    CDE,
    Concat,
    Copy,
    Delete,
    Doc,
    Editor,
    Extract,
    Insert,
    apply_cde,
    eval_cde,
    format_cde,
    parse_cde,
)
from repro.slp.lce import FactorHasher, compare_suffixes, longest_common_extension
from repro.slp.membership import CompressedMembership, simulate_uncompressed
from repro.slp.serialize import (
    dump_database,
    dump_snapshot,
    dumps_database,
    dumps_snapshot,
    load_database,
    loads_database,
    read_journal,
)
from repro.slp.pattern import CompressedPatternMatcher
from repro.slp.slp import SLP, DocumentDatabase, figure_1_database, figure_1_slp
from repro.slp.spanner_eval import SLPSpannerEvaluator

__all__ = [
    "CDE",
    "CompressedMembership",
    "CompressedPatternMatcher",
    "Concat",
    "Copy",
    "Delete",
    "Doc",
    "DocumentDatabase",
    "Editor",
    "Extract",
    "FactorHasher",
    "Fingerprinter",
    "Insert",
    "SLP",
    "SLPSpannerEvaluator",
    "apply_cde",
    "assert_strongly_balanced",
    "balanced_node",
    "char_at",
    "compare_suffixes",
    "concat_balanced",
    "dump_database",
    "dump_snapshot",
    "dumps_database",
    "dumps_snapshot",
    "eval_cde",
    "format_cde",
    "extract",
    "extract_balanced",
    "fibonacci_node",
    "figure_1_database",
    "figure_1_slp",
    "longest_common_extension",
    "load_database",
    "loads_database",
    "lz78_node",
    "parse_cde",
    "power_node",
    "read_journal",
    "rebalance",
    "repair_node",
    "repeat_node",
    "simulate_uncompressed",
    "split_balanced",
]
