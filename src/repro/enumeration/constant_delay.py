"""Constant-delay enumeration for regular spanners (paper Section 2.5).

The two-phase algorithm:

1. **Preprocessing** (linear in the document, data complexity): compile the
   spanner to a deterministic extended vset-automaton (a one-time,
   document-independent cost hidden in the O-notation of data complexity)
   and build the :class:`~repro.enumeration.product.ProductIndex`.
2. **Enumeration**: depth-first search over the *emission tree* — the tree
   of useful marker-set emissions.  The DFS stack has depth at most
   ``2·|X| + 1`` (each emission places at least one of the ``2·|X|``
   markers), and the jump pointers of the product index let the search move
   between consecutive useful emissions in O(1).  The delay between two
   output tuples is therefore **O(|X|)** — independent of the document
   length — and outputs are duplicate-free because the automaton is
   deterministic (every output corresponds to exactly one run).

This realises, at the granularity the survey describes them, the guarantees
of Florenzano et al. [10] and Amarilli et al. [2].
"""

from __future__ import annotations

from typing import Iterator

from repro import obs
from repro.automata.evset import DeterministicEVA, ExtendedVSetAutomaton
from repro.core.spans import SpanRelation, SpanTuple
from repro.enumeration.naive import emissions_to_tuple
from repro.enumeration.product import ProductIndex
from repro.obs.profile import DelayProfiler

__all__ = ["Enumerator", "measure_delays", "profile_delays"]

_NO_STATE = -1


class Enumerator:
    """Two-phase enumerator for a regular spanner.

    Accepts any of the regular-spanner representations — a
    :class:`~repro.automata.vset.VSetAutomaton`, an
    :class:`~repro.automata.evset.ExtendedVSetAutomaton`, or an already
    deterministic :class:`~repro.automata.evset.DeterministicEVA` — and
    compiles down once; the compiled automaton is reused across documents.
    """

    def __init__(self, spanner) -> None:
        if isinstance(spanner, DeterministicEVA):
            det = spanner
        elif isinstance(spanner, ExtendedVSetAutomaton):
            det = spanner.determinize()
        else:
            det = ExtendedVSetAutomaton.from_vset(spanner).determinize()
        self.det = det

    # ------------------------------------------------------------------
    # phase 1
    # ------------------------------------------------------------------
    def preprocess(self, doc: str, budget=None) -> ProductIndex:
        """Build the product index for *doc* (linear-time preprocessing).

        A :class:`~repro.util.Budget` guards the Θ(n·|Q|) index size
        against ``max_bytes`` and is charged one step per position."""
        if budget is not None:
            budget.charge_bytes(len(doc), what="enumeration preprocessing")
        with obs.tracer().span("enumerate.preprocess", doc_length=len(doc)):
            return ProductIndex(self.det, doc, budget)

    # ------------------------------------------------------------------
    # phase 2
    # ------------------------------------------------------------------
    def enumerate_index(self, index: ProductIndex, budget=None) -> Iterator[SpanTuple]:
        """Enumerate the span relation from a prebuilt index.

        When :mod:`repro.obs` is enabled, the stream runs inside an
        ``enumerate.stream`` span and each tuple's production delay is
        recorded in the ``enumeration.delay_ns`` histogram — the empirical
        form of the constant-delay claim.  Disabled, the only extra cost is
        one boolean check per *call* (not per tuple)."""
        stream = map(emissions_to_tuple, self.enumerate_emissions(index, budget))
        if not obs.enabled():
            yield from stream
            return
        profiler = DelayProfiler(obs.metrics().histogram("enumeration.delay_ns"))
        with obs.tracer().span("enumerate.stream", doc_length=index.length):
            yield from profiler.wrap(stream)

    def enumerate_emissions(
        self, index: ProductIndex, budget=None
    ) -> Iterator[tuple[tuple[int, object], ...]]:
        """Enumerate outputs as tuples of (span position, marker) emissions."""
        det = self.det
        n = index.length

        start = det.initial
        if index.acc_pure[0][start]:
            yield ()
        # DFS over the emission tree with an explicit stack of live chain
        # iterators (depth is 2·|X|+1 on functional spanners but can reach
        # the document length on pathological ones — never recurse).  Each
        # frame pairs the suspended chain with the emissions accumulated on
        # the path down to it.
        stack: list[tuple[Iterator, tuple]] = [(index.chain(start, 0), ())]
        while stack:
            chain_iter, prefix = stack[-1]
            descended = False
            for j, block, target in chain_iter:
                # *target* is the state reached right after consuming the
                # marker block at char-index *j*
                if budget is not None:
                    budget.step()
                emitted = prefix + tuple((j + 1, m) for m in block)
                if index.acc_pure[j][target]:
                    yield emitted
                if j < n:
                    after_char = index.char_next[j][target]
                    if after_char != _NO_STATE:
                        stack.append((index.chain(after_char, j + 1), emitted))
                        descended = True
                        break
            if not descended:
                stack.pop()

    def enumerate(self, doc: str, budget=None) -> Iterator[SpanTuple]:
        """Preprocess and enumerate ``S(doc)`` without repetition."""
        yield from self.enumerate_index(self.preprocess(doc, budget), budget)

    def evaluate(self, doc: str, budget=None) -> SpanRelation:
        """Materialise the relation via the enumeration pipeline."""
        return SpanRelation(self.det.variables, self.enumerate(doc, budget))


def profile_delays(iterator: Iterator) -> tuple[list, DelayProfiler]:
    """Drain *iterator* under a :class:`~repro.obs.profile.DelayProfiler`.

    Returns ``(items, profiler)``; the profiler holds the per-item delay
    histogram (ns), raw samples, and percentile queries.  This is the
    histogram-backed successor of :func:`measure_delays` and what the
    delay-profile benchmarks (C1, C3, O1) use to test that delays stay
    flat as documents grow.
    """
    profiler = DelayProfiler(keep_samples=True)
    items = profiler.drain(iterator)
    return items, profiler


def measure_delays(iterator: Iterator) -> tuple[list, list[float]]:
    """Drain *iterator*, recording the monotonic delay before each item.

    Returns ``(items, delays)`` where ``delays[k]`` is the time in seconds
    spent producing item ``k`` (including, for ``k = 0``, any lazy setup in
    the iterator itself but not the preprocessing if that already
    happened).  Thin compatibility wrapper over :func:`profile_delays` —
    timing is :func:`time.perf_counter_ns` throughout."""
    items, profiler = profile_delays(iterator)
    assert profiler.samples_ns is not None
    return items, [ns / 1e9 for ns in profiler.samples_ns]
