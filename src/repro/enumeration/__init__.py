"""Enumeration algorithms for regular spanners (paper Section 2.5)."""

from repro.enumeration.constant_delay import Enumerator, measure_delays, profile_delays
from repro.enumeration.naive import (
    brute_force_tuples,
    emissions_to_tuple,
    evaluate_eva,
    evaluate_vset,
)
from repro.enumeration.product import ProductIndex

__all__ = [
    "Enumerator",
    "ProductIndex",
    "brute_force_tuples",
    "emissions_to_tuple",
    "evaluate_eva",
    "evaluate_vset",
    "measure_delays",
    "profile_delays",
]
