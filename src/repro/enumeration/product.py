"""The (deterministic eVA × document) product index.

This is the preprocessing phase of the two-phase enumeration scheme of
Section 2.5 ([10], [2]): for a deterministic extended vset-automaton with
state set Q and a document of length n, we build, in **O(n·|Q|)** time and
space (linear in the document, i.e. linear preprocessing in data
complexity):

* ``char_next[i]`` — the deterministic character successor function at
  position i (a |Q|-vector; −1 = dead);
* ``back_post``/``back_pre`` — co-accessibility of product nodes, so the
  enumeration phase never explores a branch that cannot produce an output;
* ``nxt_pos``/``nxt_state`` — *jump pointers*: the first position ``j ≥ i``
  (and the state the marker-free run reaches there) at which a useful
  marker-set transition exists.  These pointers are what bound the
  enumeration delay independently of the document length: marker-free
  stretches of the product DAG are skipped in O(1);
* ``acc_pure`` — whether the marker-free run from (q, i) accepts.

The tables are flat numpy arrays and the backward pass is vectorised over
Q, so preprocessing a megabyte-scale document is a few numpy operations
per position.  The index is also the baseline data structure that the
SLP-compressed evaluation of Section 4 must *avoid* building, since it is
inherently Ω(n)-sized (cf. the discussion in Section 4.2 of the paper).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.automata.evset import DeterministicEVA
from repro.kernels.bitmat import BitMatrix, pack_vec

__all__ = ["ProductIndex"]

_NO_STATE = -1


class ProductIndex:
    """Preprocessed product of a deterministic eVA and one document."""

    __slots__ = (
        "det",
        "doc",
        "char_next",
        "back_post",
        "back_pre",
        "nxt_pos",
        "nxt_state",
        "acc_pure",
        "_set_arcs",
    )

    def __init__(self, det: DeterministicEVA, doc: str, budget=None) -> None:
        if budget is not None:
            # the index is Θ(n·|Q|) cells — guard it like a materialisation
            budget.charge_bytes(
                6 * (len(doc) + 1) * det.num_states, what="product index"
            )
        self.det = det
        self.doc = doc
        n = len(doc)
        num_states = det.num_states
        #: per-state marker-set arcs as (targets array, blocks list)
        self._set_arcs: list[tuple[np.ndarray, list]] = []
        for q in range(num_states):
            items = list(det.set_trans[q].items())
            targets = np.fromiter(
                (target for _, target in items), dtype=np.int64, count=len(items)
            )
            self._set_arcs.append((targets, [block for block, _ in items]))
        has_set_arcs = np.array(
            [len(det.set_trans[q]) > 0 for q in range(num_states)], dtype=bool
        )

        # --- per-atom transition table, then char_next per position --------
        atom_index = {atom: k for k, atom in enumerate(det.atoms.atoms)}
        table = np.full((len(atom_index) + 1, num_states), _NO_STATE, dtype=np.int64)
        for q in range(num_states):
            for atom, target in det.char_trans[q].items():
                table[atom_index[atom], q] = target
        doc_atoms = np.fromiter(
            (
                atom_index.get(det.atoms.classify(ch), len(atom_index))
                for ch in doc
            ),
            dtype=np.int64,
            count=n,
        )
        # char_next[i, q]: successor of q on doc[i]
        self.char_next = table[doc_atoms] if n else np.empty((0, num_states), dtype=np.int64)

        # --- backward passes -------------------------------------------------
        accepting = np.zeros(num_states, dtype=bool)
        for state in det.accepting:
            accepting[state] = True

        self.back_post = np.zeros((n + 1, num_states), dtype=bool)
        self.back_pre = np.zeros((n + 1, num_states), dtype=bool)
        self.acc_pure = np.zeros((n + 1, num_states), dtype=bool)
        self.nxt_pos = np.full((n + 1, num_states), -1, dtype=np.int64)
        self.nxt_state = np.full((n + 1, num_states), _NO_STATE, dtype=np.int64)

        self.back_post[n] = accepting
        self.acc_pure[n] = accepting
        # the marker-set arc relation packed into bit-words: has_useful is
        # one packed mat-vec (word AND + any) per position instead of a
        # flattened gather/scatter over every arc
        arc_dense = np.zeros((num_states, num_states), dtype=bool)
        any_arcs = False
        for q in range(num_states):
            for t in det.set_trans[q].values():
                arc_dense[q, t] = True
                any_arcs = True
        arc_rows = BitMatrix.from_bool(arc_dense).rows
        state_ids = np.arange(num_states)

        for i in range(n, -1, -1):
            if budget is not None:
                budget.step()
            if i < n:
                cn = self.char_next[i]
                valid = cn != _NO_STATE
                gathered = cn * valid  # dead entries read slot 0, masked below
                self.back_post[i] = valid & self.back_pre[i + 1][gathered]
                self.acc_pure[i] = valid & self.acc_pure[i + 1][gathered]
            # a useful marker-set edge exists at (i, q) iff some set arc's
            # target is co-accessible after the block
            bp = self.back_post[i]
            if any_arcs:
                has_useful = (arc_rows & pack_vec(bp)).any(axis=1)
            else:
                has_useful = np.zeros(num_states, dtype=bool)
            self.back_pre[i] = bp | has_useful
            # jump pointers
            if i < n:
                cn = self.char_next[i]
                valid = cn != _NO_STATE
                gathered = cn * valid
                follow = ~has_useful & valid
                self.nxt_pos[i] = np.where(
                    has_useful, i, np.where(follow, self.nxt_pos[i + 1][gathered], -1)
                )
                self.nxt_state[i] = np.where(
                    has_useful,
                    state_ids,
                    np.where(follow, self.nxt_state[i + 1][gathered], _NO_STATE),
                )
            else:
                self.nxt_pos[i] = np.where(has_useful, i, -1)
                self.nxt_state[i] = np.where(has_useful, state_ids, _NO_STATE)

    @property
    def length(self) -> int:
        return len(self.doc)

    def useful_edges(self, position: int, state: int) -> list[tuple[frozenset, int]]:
        """The marker-set transitions at (state, position) whose target can
        still reach acceptance.  O(arcs of *state*)."""
        targets, blocks = self._set_arcs[state]
        bp = self.back_post[position]
        return [
            (blocks[k], int(targets[k]))
            for k in range(len(blocks))
            if bp[targets[k]]
        ]

    def chain(self, state: int, position: int) -> Iterator[tuple[int, frozenset, int]]:
        """Iterate all useful marker-set transitions reachable from
        (state, position) by a marker-free run, in position order.

        Yields ``(j, block, target)`` triples.  Between two consecutive
        yields only O(1) work happens thanks to the jump pointers.
        """
        n = self.length
        nxt_pos = self.nxt_pos
        nxt_state = self.nxt_state
        while True:
            j = int(nxt_pos[position, state])
            if j < 0:
                return
            p = int(nxt_state[position, state])
            yield from (
                (j, block, target) for block, target in self.useful_edges(j, p)
            )
            if j >= n:
                return
            after_char = int(self.char_next[j, p])
            if after_char == _NO_STATE:
                return
            state, position = after_char, j + 1

    def size_in_cells(self) -> int:
        """Rough size of the index (cells across all tables) — used by the
        preprocessing-is-linear benchmark (experiment C1)."""
        n = self.length
        return 6 * (n + 1) * self.det.num_states
