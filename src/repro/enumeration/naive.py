"""Baseline evaluation of regular spanners by backward dynamic programming.

This is the reference evaluator: simple, obviously correct, and used as
ground truth by the test suite and as the baseline in the enumeration
benchmarks (experiment C1).  It materialises, for every (state, position)
of the (eVA × document) product, the set of *suffix outputs* — the marker
emissions of all accepting continuations — and combines them backwards.

Deduplication is inherent: outputs are sets of (position, marker) pairs, and
two runs producing the same span tuple produce the same set.
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.evset import ExtendedVSetAutomaton
from repro.core.alphabet import Marker, symbol_matches
from repro.core.spans import Span, SpanRelation, SpanTuple

__all__ = ["evaluate_vset", "evaluate_eva", "emissions_to_tuple", "brute_force_tuples"]

Emission = frozenset  # of (position, Marker) pairs


def emissions_to_tuple(emissions: Iterable[tuple[int, Marker]]) -> SpanTuple:
    """Convert a set of (1-based position, marker) emissions to a span tuple."""
    opens: dict[str, int] = {}
    closes: dict[str, int] = {}
    for position, marker in emissions:
        if marker.is_open:
            opens[marker.var] = position
        else:
            closes[marker.var] = position
    return SpanTuple(
        {var: Span(opens[var], closes[var]) for var in opens if var in closes}
    )


def evaluate_eva(eva: ExtendedVSetAutomaton, doc: str) -> SpanRelation:
    """Materialise ``⟦eva⟧(doc)`` by backward DP over the product graph."""
    n = len(doc)
    # after_block[state]: suffix outputs assuming the block at the current
    # position has already been read (so the next event is a character, or
    # acceptance if the document is exhausted).
    after_block: dict[int, set[Emission]] = {
        state: ({Emission()} if state in eva.accepting else set())
        for state in range(eva.num_states)
    }
    full = _with_blocks(eva, after_block, n)
    for position in range(n - 1, -1, -1):
        ch = doc[position]
        next_full = full
        after_block = {state: set() for state in range(eva.num_states)}
        for state in range(eva.num_states):
            collected = after_block[state]
            for symbol, target in eva.char_arcs[state]:
                if symbol_matches(symbol, ch):
                    collected.update(next_full[target])
        full = _with_blocks(eva, after_block, position)
    outputs: set[Emission] = set()
    for state in eva.initial:
        outputs.update(full[state])
    return SpanRelation(eva.variables, (emissions_to_tuple(e) for e in outputs))


def _with_blocks(
    eva: ExtendedVSetAutomaton,
    after_block: dict[int, set[Emission]],
    position: int,
) -> dict[int, set[Emission]]:
    """Prepend the optional marker block at *position* (0-based char index)."""
    marker_position = position + 1  # spans are 1-based
    full: dict[int, set[Emission]] = {
        state: set(suffixes) for state, suffixes in after_block.items()
    }
    for state in range(eva.num_states):
        for marker_set, target in eva.set_arcs[state]:
            emitted = Emission((marker_position, m) for m in marker_set)
            for suffix in after_block[target]:
                full[state].add(emitted | suffix)
    return full


def evaluate_vset(vset, doc: str) -> SpanRelation:
    """Materialise ``⟦M⟧(doc)`` for a vset-automaton."""
    return evaluate_eva(ExtendedVSetAutomaton.from_vset(vset), doc)


def brute_force_tuples(variables: Iterable[str], doc: str):
    """Generate *every* span tuple over *variables* and *doc* (total tuples).

    Exponential in the number of variables — used only as an oracle on tiny
    inputs in the test suite.
    """
    variables = sorted(variables)
    spans = [
        Span(i, j)
        for i in range(1, len(doc) + 2)
        for j in range(i, len(doc) + 2)
    ]

    def assign(index: int, current: dict[str, Span]):
        if index == len(variables):
            yield SpanTuple(current)
            return
        var = variables[index]
        for span in spans:
            current[var] = span
            yield from assign(index + 1, current)
        current.pop(var, None)

    yield from assign(0, {})
