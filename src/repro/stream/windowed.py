"""Windowed spanner evaluation over an append-only feed.

The paper's compressed-evaluation pipeline (Schmid & Schweikardt; see
``repro.slp.spanner_eval``) assumes the document exists in full before
preprocessing.  This module removes that assumption for the one edit
shape live feeds actually perform — *append* — while keeping every
correctness guarantee bit-for-bit:

* :meth:`repro.slp.slp.SLP.append_text` joins each chunk onto the right
  spine of the document's strongly balanced SLP, so a window allocates
  only ``O(|chunk| + log n)`` fresh nodes and the evaluator's
  ``(σ, T, T_em)`` cache entries for the untouched prefix survive.
* A **differential guard** maintains the whole-document entry a second
  way — the associative fold of :mod:`repro.parallel.fold` over the raw
  feed characters — and compares it bit-for-bit against the entry
  computed over the appended SLP.  Exact associativity of the entry
  algebra makes any mismatch a hard evidence of corruption
  (:class:`~repro.errors.StreamError`), at which point the caller (see
  :class:`repro.serve.StreamSession`) falls back to
  :meth:`WindowedSpannerStream.rebuild`.
* Windows emit **deltas**.  Spanner results are not monotone under
  append (a span ending at the old boundary ``n+1`` can stop matching on
  the extended document), so each window reports ``added`` — results
  newly present — and ``retracted`` — results that held on the previous
  prefix but no longer do.  The maintained *frontier* (the latest full
  result set) therefore always equals a one-shot query over the current
  document, which is exactly what the differential fuzz lane asserts.

Per-window resource governance reuses :class:`repro.util.Budget`: the
deadline bounds ingest + enumeration, ``max_steps`` bounds abstract
work, and ``frontier_max_bytes`` is charged against the frontier after
every window so a pathological feed raises a typed
:class:`~repro.errors.MemoryLimitError` instead of growing without
bound.  A window that overruns its deadline ships the results collected
so far and carries a :class:`~repro.errors.WindowOverrunError` marker;
the next complete window reconciles the frontier (partial-window state
is resumable, never corrupting).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro import obs
from repro.core.spans import SpanTuple
from repro.errors import (
    EvaluationLimitError,
    MemoryLimitError,
    StreamError,
    WindowOverrunError,
)
from repro.parallel.fold import DEFAULT_CHUNK, combine, identity_entry, text_entry
from repro.slp.balance import rebalance
from repro.slp.build import repair_node
from repro.slp.slp import SLP
from repro.slp.spanner_eval import SLPSpannerEvaluator
from repro.util.budget import Budget, Deadline

__all__ = [
    "StreamConfig",
    "WindowResult",
    "WindowedSpannerStream",
    "span_tuple_bytes",
    "stream_windows",
]


def span_tuple_bytes(tup: SpanTuple) -> int:
    """Deterministic per-tuple cost used for frontier memory accounting.

    A flat estimate (object header + one interned-name/span pair per
    binding) rather than ``sys.getsizeof`` recursion: the charge must be
    identical across platforms and interpreter versions so the
    ``frontier_max_bytes`` bound in tests and runbooks is reproducible.
    """
    return 64 + 48 * len(tup)


def _entries_equal(left, right) -> bool:
    """Bit-for-bit equality of two ``(σ, T, T_em)`` entries."""
    if left is None or right is None:
        return False
    return (
        np.array_equal(left[0], right[0])
        and np.array_equal(left[1].rows, right[1].rows)
        and np.array_equal(left[2].rows, right[2].rows)
    )


@dataclass(frozen=True)
class StreamConfig:
    """Tuning knobs of one :class:`WindowedSpannerStream`.

    Parameters
    ----------
    window_deadline:
        Wall-clock seconds each window (ingest + evaluation) may spend
        before it is shipped partial with a
        :class:`~repro.errors.WindowOverrunError` marker.  ``None``
        disables the per-window deadline.
    max_steps:
        Abstract step allowance per window (matrix products and
        enumeration descents), same units as :class:`repro.util.Budget`.
    frontier_max_bytes:
        Bound on the dedup frontier's accounted bytes
        (:func:`span_tuple_bytes` per tuple); exceeding it raises a
        typed :class:`~repro.errors.MemoryLimitError`.
    rebuild_max_chars:
        Decompression guard on the :meth:`WindowedSpannerStream.rebuild`
        fallback, which must materialise the whole document once.
    differential_guard:
        Maintain the raw-feed fold and verify it bit-for-bit against the
        SLP entry after every fully folded window.  Costs
        ``O(|chunk| · |Q|³)`` per window; disable only when the feed is
        trusted and profiling shows the fold dominating.
    chunk_size:
        Block size of the raw-feed fold (value-independent; peak working
        set knob, see :func:`repro.parallel.fold.text_entry`).
    """

    window_deadline: float | None = None
    max_steps: int | None = None
    frontier_max_bytes: int | None = None
    rebuild_max_chars: int = 10_000_000
    differential_guard: bool = True
    chunk_size: int = DEFAULT_CHUNK


@dataclass
class WindowResult:
    """What one appended chunk changed about the spanner's result set."""

    #: zero-based window index
    window: int
    #: characters appended by this window's chunk
    chunk_chars: int
    #: total document length after the append
    document_chars: int
    #: results newly present on the extended document
    added: list[SpanTuple]
    #: results that held on the previous prefix but no longer do
    retracted: list[SpanTuple]
    #: True when the window shipped partial (deadline/step overrun or
    #: exhausted fault retries); ``added`` is then a lower bound and
    #: ``retracted`` is empty — the next complete window reconciles
    overrun: bool = False
    #: the typed marker carried (not raised) by an overrun window
    error: WindowOverrunError | None = None
    #: True when this window went through the rebuild-from-scratch path
    rebuilt: bool = False
    #: fresh SLP-node entries the evaluator computed for this window
    fresh_nodes: int = 0
    #: accounted frontier bytes after this window (gauge)
    frontier_bytes: int = 0
    #: wall-clock nanoseconds the window spent (monotonic)
    window_ns: int = 0


class WindowedSpannerStream:
    """Incremental spanner evaluation over an append-only document.

    Single-owner by design: one stream owns one private SLP arena and is
    driven from one thread (the caller's, or a
    :class:`repro.serve.StreamSession` evaluation thread).  Concurrency,
    backpressure and fault routing live in the session layer; this class
    is the deterministic core the differential fuzz lane exercises.
    """

    def __init__(self, spanner, config: StreamConfig | None = None) -> None:
        self.config = config or StreamConfig()
        if isinstance(spanner, str):
            from repro.kernels.plan import plan_cache

            self._evaluator = plan_cache().get_or_compile(spanner).evaluator
        elif isinstance(spanner, SLPSpannerEvaluator):
            self._evaluator = spanner
        else:
            self._evaluator = SLPSpannerEvaluator(spanner)
        self._q = self._evaluator.det.num_states
        self.slp = SLP()
        self.node: int | None = None
        #: latest full result set (the dedup frontier); always equals a
        #: one-shot query over the current document after a complete window
        self._frontier: set[SpanTuple] = set()
        self._frontier_bytes = 0
        #: does the frontier reflect a *complete* evaluation of the
        #: current document?  False until the first window: even the
        #: empty document can have results (empty-span tuples), which
        #: the first window establishes via the decompressed path
        self._frontier_complete = False
        self._text_len = 0
        #: guard state: the raw-feed fold covers the first _entry_len
        #: chars; _pending_tail holds ingested chars not yet folded
        #: (non-empty only after a budget overrun mid-ingest)
        self._prefix_entry = identity_entry(self._q)
        self._entry_len = 0
        self._pending_tail = ""
        self._windows = 0
        self._rebuilds = 0
        self._guard_trips = 0

    # ------------------------------------------------------------------
    # budgets and bookkeeping
    # ------------------------------------------------------------------
    def window_budget(self, deadline: Deadline | None = None) -> Budget:
        """A fresh per-window budget from the config (tightened by an
        optional caller deadline — e.g. a session drain deadline)."""
        own = (
            Deadline.after(self.config.window_deadline)
            if self.config.window_deadline is not None
            else None
        )
        # frontier_max_bytes is charged by evaluate() against a dedicated
        # guard, not here: Budget.max_bytes polices every materialisation
        # it sees, and the fold's internal level buffers must not be
        # bounded by a limit that means "frontier memory"
        return Budget(
            deadline=Deadline.earliest(own, deadline),
            max_steps=self.config.max_steps,
        )

    def begin_window(self) -> int:
        """Claim the next window index (used by :meth:`append` and by the
        session layer, which drives ingest/evaluate itself)."""
        index = self._windows
        self._windows += 1
        return index

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(self, chunk: str, budget: Budget | None = None) -> int:
        """Incrementally append *chunk*; returns fresh evaluator entries.

        Failure semantics (the robustness contract the session relies on):

        * a **budget overrun** (:class:`~repro.errors.DeadlineExceededError`
          or :class:`~repro.errors.EvaluationLimitError`) propagates but
          the chunk *is* part of the document — preprocessing and the
          guard fold are resumable and complete in a later window;
        * **any other failure** (injected fault, guard trip) rolls the
          arena and all bookkeeping back to the pre-call state, so the
          chunk is *not* ingested and the caller may retry or
          :meth:`rebuild` with it.
        """
        if not chunk:
            return 0
        mark = self.slp.mark()
        saved = (
            self.node,
            self._text_len,
            self._pending_tail,
            self._prefix_entry,
            self._entry_len,
            self._frontier_complete,
        )
        try:
            self.node = self.slp.append_text(self.node, chunk)
            self._text_len += len(chunk)
            self._frontier_complete = False
            fresh = self._evaluator.preprocess(self.slp, self.node, budget)
            if self.config.differential_guard:
                self._pending_tail += chunk
                self._fold_pending(budget)
                if self._entry_len == self._text_len:
                    self._check_guard()
            return fresh
        except EvaluationLimitError:
            # deadline/step overrun: keep the (resumable) partial state
            raise
        except BaseException:
            # stream arena is single-owner, so rollback mirrors db.py's
            # transaction machinery on a private arena
            self._evaluator.invalidate_from(self.slp, mark)  # thread-safety-ok
            self.slp.truncate(mark)  # thread-safety-ok
            (
                self.node,
                self._text_len,
                self._pending_tail,
                self._prefix_entry,
                self._entry_len,
                self._frontier_complete,
            ) = saved
            raise

    def _fold_pending(self, budget: Budget | None) -> None:
        """Fold ingested-but-unfolded chars into the raw-feed entry."""
        tail = self._pending_tail
        if not tail:
            return
        entry = text_entry(
            self._evaluator.char_entries(tail),
            tail,
            self._q,
            chunk_size=self.config.chunk_size,
            budget=budget,
        )
        self._prefix_entry = combine(self._prefix_entry, entry, self._q)
        self._entry_len += len(tail)
        self._pending_tail = ""

    def _check_guard(self) -> None:
        """Compare the SLP root entry against the raw-feed fold, bit for bit."""
        assert self.node is not None
        root = self._evaluator.node_entry(self.slp, self.node)
        if _entries_equal(root, self._prefix_entry):
            return
        self._guard_trips += 1
        if obs.enabled():
            obs.metrics().counter("stream.guard_trips").inc()
        raise StreamError(
            "differential guard tripped: the incremental SLP entry disagrees "
            "with the raw-feed fold — compressed state is corrupt, rebuild required"
        )

    # ------------------------------------------------------------------
    # rebuild fallback
    # ------------------------------------------------------------------
    def rebuild(self, chunk: str = "", budget: Budget | None = None) -> int:
        """Rebuild the compressed state from scratch, appending *chunk*.

        The degraded path behind the session's circuit breaker: derives
        the current document (bounded by ``rebuild_max_chars``),
        recompresses it with Re-Pair into a **fresh arena**, recomputes
        the evaluator entries and the guard fold, and only then commits —
        a failure mid-rebuild leaves the previous state untouched and the
        chunk un-ingested.  O(n), unlike :meth:`ingest`'s O(log n).
        """
        full_len = self._text_len + len(chunk)
        if full_len > self.config.rebuild_max_chars:
            raise MemoryLimitError(
                f"stream rebuild would materialise {full_len} chars "
                f"(rebuild_max_chars is {self.config.rebuild_max_chars})"
            )
        text = (
            self.slp.derive(self.node, limit=self.config.rebuild_max_chars)
            if self.node is not None
            else ""
        )
        full = text + chunk
        if budget is not None:
            budget.charge_bytes(len(full), "stream rebuild")
        old_slp = self.slp
        fresh_slp = SLP()
        try:
            node = rebalance(fresh_slp, repair_node(fresh_slp, full)) if full else None
            fresh = 0
            prefix = identity_entry(self._q)
            if node is not None:
                fresh = self._evaluator.preprocess(fresh_slp, node, budget)
                if self.config.differential_guard:
                    prefix = text_entry(
                        self._evaluator.char_entries(full),
                        full,
                        self._q,
                        chunk_size=self.config.chunk_size,
                        budget=budget,
                    )
                    if not _entries_equal(
                        self._evaluator.node_entry(fresh_slp, node), prefix
                    ):
                        self._guard_trips += 1
                        raise StreamError(
                            "differential guard tripped on the rebuild path — "
                            "evaluation is unreliable for this spanner/arena"
                        )
        except BaseException:
            # previous state untouched; drop the half-built arena's
            # entries eagerly instead of waiting for its finalizer
            self._evaluator.invalidate_from(fresh_slp, 0)  # thread-safety-ok
            raise
        # commit, then eagerly release the old arena's cached matrices
        self.slp = fresh_slp
        self.node = node
        self._text_len = len(full)
        self._prefix_entry = prefix
        self._entry_len = len(full) if self.config.differential_guard else 0
        self._pending_tail = ""
        if chunk:
            self._frontier_complete = False
        self._rebuilds += 1
        self._evaluator.invalidate_from(old_slp, 0)  # thread-safety-ok
        if obs.enabled():
            obs.metrics().counter("stream.rebuilds").inc()
        return fresh

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, budget: Budget | None = None
    ) -> tuple[list[SpanTuple], list[SpanTuple], bool]:
        """Evaluate the current document and reconcile the frontier.

        Returns ``(added, retracted, complete)``.  A budget overrun mid-
        enumeration ships the tuples collected so far (``complete`` is
        False, ``retracted`` stays empty, the frontier only grows) —
        partial state is resumable: the next complete window emits the
        missing tuples as ``added`` and reconciles retractions.  Any
        other failure (e.g. an injected evaluator fault) propagates with
        the frontier untouched.
        """
        collected: list[SpanTuple] = []
        complete = False
        try:
            if self.node is not None:
                for tup in self._evaluator.enumerate(self.slp, self.node, budget):
                    collected.append(tup)
            else:
                # the arena cannot represent the empty document; its
                # (possibly non-empty: empty-span tuples) result set
                # comes from the decompressed path instead
                for tup in self._evaluator.evaluate_text("", budget=budget):
                    collected.append(tup)
            complete = True
        except MemoryLimitError:
            # the frontier/rebuild byte bound is a typed config violation,
            # not a per-window overrun: propagate
            raise
        except EvaluationLimitError:
            complete = False
        current = set(collected)
        added = [t for t in collected if t not in self._frontier]
        if complete:
            retracted = [t for t in self._frontier if t not in current]
            new_frontier = current
        else:
            retracted = []
            new_frontier = self._frontier | current
        new_bytes = sum(span_tuple_bytes(t) for t in new_frontier)
        if self.config.frontier_max_bytes is not None:
            # charged before the frontier mutates, so on refusal the held
            # frontier is still under the bound
            Budget(max_bytes=self.config.frontier_max_bytes).charge_bytes(
                new_bytes, "stream frontier"
            )
        self._frontier = new_frontier
        self._frontier_bytes = new_bytes
        self._frontier_complete = complete
        if obs.enabled():
            registry = obs.metrics()
            registry.gauge("stream.frontier_bytes").set(new_bytes)
            registry.gauge("stream.frontier_tuples").set(len(new_frontier))
        return added, retracted, complete

    # ------------------------------------------------------------------
    # the composed per-window surface
    # ------------------------------------------------------------------
    def append(self, chunk: str, *, deadline: Deadline | None = None) -> WindowResult:
        """One window: ingest *chunk*, evaluate, return the delta.

        The single-threaded surface (no backpressure, no fault retries —
        see :class:`repro.serve.StreamSession` for those).  Budget
        overruns become an ``overrun`` window carrying a typed
        :class:`~repro.errors.WindowOverrunError`; a differential-guard
        trip (:class:`~repro.errors.StreamError`) and a frontier-bound
        violation (:class:`~repro.errors.MemoryLimitError`) propagate.
        """
        index = self.begin_window()
        budget = self.window_budget(deadline)
        t0 = time.perf_counter_ns()
        error: WindowOverrunError | None = None
        fresh = 0
        added: list[SpanTuple] = []
        retracted: list[SpanTuple] = []
        try:
            fresh = self.ingest(chunk, budget)
        except MemoryLimitError:
            raise
        except EvaluationLimitError as exc:
            error = WindowOverrunError(
                f"window {index}: ingest overran its budget ({exc})", window=index
            )
            error.__cause__ = exc
        if error is None and (chunk or not self._frontier_complete):
            added, retracted, complete = self.evaluate(budget)
            if not complete:
                error = WindowOverrunError(
                    f"window {index}: evaluation overran its budget "
                    f"({len(added)} results shipped partial)",
                    window=index,
                )
        result = WindowResult(
            window=index,
            chunk_chars=len(chunk),
            document_chars=self._text_len,
            added=added,
            retracted=retracted,
            overrun=error is not None,
            error=error,
            fresh_nodes=fresh,
            frontier_bytes=self._frontier_bytes,
            window_ns=time.perf_counter_ns() - t0,
        )
        record_window_metrics(result)
        return result

    def windows(self, chunks: Iterable[str]) -> Iterator[WindowResult]:
        """Generator over :meth:`append` results, one window per chunk."""
        for chunk in chunks:
            yield self.append(chunk)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def results(self) -> set[SpanTuple]:
        """A snapshot of the frontier (the current full result set after
        a complete window)."""
        return set(self._frontier)

    @property
    def frontier_complete(self) -> bool:
        """Does the frontier reflect a complete evaluation of the
        current document?"""
        return self._frontier_complete

    @property
    def document_chars(self) -> int:
        return self._text_len

    @property
    def frontier_bytes(self) -> int:
        """Accounted frontier bytes (:func:`span_tuple_bytes` per tuple)."""
        return self._frontier_bytes

    def stats(self) -> dict:
        return {
            "windows": self._windows,
            "document_chars": self._text_len,
            "frontier_tuples": len(self._frontier),
            "frontier_bytes": self._frontier_bytes,
            "frontier_complete": self._frontier_complete,
            "rebuilds": self._rebuilds,
            "guard_trips": self._guard_trips,
            "arena_nodes": self.slp.num_nodes(),
            "cache_bytes": self._evaluator.cache_bytes(),
            "cached_nodes": self._evaluator.cached_nodes(self.slp.serial),
            "sealed_nodes": self._evaluator.sealed_nodes(self.slp.serial),
        }


def record_window_metrics(result: WindowResult) -> None:
    """Publish one window's ``stream.*`` metrics (no-op when obs is off)."""
    if not obs.enabled():
        return
    registry = obs.metrics()
    registry.counter("stream.windows").inc()
    registry.histogram("stream.window_ns").record(result.window_ns)
    registry.counter("stream.appended_chars").inc(result.chunk_chars)
    registry.counter("stream.results").inc(len(result.added))
    registry.counter("stream.retracted").inc(len(result.retracted))
    registry.counter("stream.fresh_nodes").inc(result.fresh_nodes)
    if result.overrun:
        registry.counter("stream.overruns").inc()
    registry.gauge("stream.frontier_bytes").set(result.frontier_bytes)


def stream_windows(
    spanner, chunks: Iterable[str], config: StreamConfig | None = None
) -> Iterator[WindowResult]:
    """Convenience generator: evaluate *spanner* over an append feed.

    >>> from repro.stream import stream_windows
    >>> for window in stream_windows("!x{ab}", ["ab", "ab"]):
    ...     print(window.window, sorted(map(str, window.added)))
    """
    stream = WindowedSpannerStream(spanner, config)
    return stream.windows(chunks)
