"""Streaming ingestion: incremental spanner evaluation over live feeds.

The first append-oriented subsystem: where :mod:`repro.db` assumes whole
documents and :mod:`repro.parallel` fans completed documents out, this
package evaluates a spanner *while the document grows*, one appended
chunk (a "window") at a time:

* :class:`WindowedSpannerStream` — the deterministic core.  Each window
  appends its chunk onto the document's strongly balanced SLP via
  :meth:`repro.slp.slp.SLP.append_text` (O(log n) fresh nodes), verifies
  the compressed state against an independently maintained raw-feed fold
  (the differential guard), and emits the result **delta**: tuples newly
  added and tuples retracted (spanner results are not monotone under
  append).  Per-window :class:`repro.util.Budget` governance bounds
  wall-clock, steps and frontier memory with typed errors.
* :func:`stream_windows` — one-call generator over a chunk iterable.
* The concurrent surface — bounded ingest queue, backpressure,
  circuit-broken rebuild fallback, drain-on-close — is
  :class:`repro.serve.StreamSession`.

See ``docs/RELIABILITY.md`` ("Streaming ingestion runbook") for tuning
and the degraded-mode semantics.
"""

from repro.stream.windowed import (
    StreamConfig,
    WindowResult,
    WindowedSpannerStream,
    span_tuple_bytes,
    stream_windows,
)

__all__ = [
    "StreamConfig",
    "WindowResult",
    "WindowedSpannerStream",
    "span_tuple_bytes",
    "stream_windows",
]
