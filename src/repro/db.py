"""`SpannerDB`: the integrated system of the paper's Section 4 narrative.

The dynamic setting of [40] is a *system*: an SLP-compressed document
database, a set of registered spanners M₁…M_k whose evaluation structures
are maintained, and a stream of complex document edits after which every
spanner stays immediately queryable.  This module is that system:

* documents are stored strongly balanced (compressed on ingest with
  Re-Pair, then rebalanced);
* registering a spanner compiles it once (deterministic eVA) and
  preprocesses the per-node matrices for every stored document —
  O(|S|·|Q|³) total, shared across documents through the arena;
* :meth:`SpannerDB.edit` applies a CDE-expression in O(|φ|·log d) and
  updates every registered spanner's matrices for the O(log d) fresh
  nodes only;
* :meth:`SpannerDB.query` streams results with O(log |D|) delay, and
  :meth:`SpannerDB.is_nonempty` answers without enumerating.

This is also the "adoption surface" of the library: a downstream user who
just wants *compressed storage + incremental information extraction* needs
only this class.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.spans import SpanRelation, SpanTuple
from repro.errors import SchemaError, SLPError
from repro.regex.compile import spanner_from_regex
from repro.slp.balance import rebalance
from repro.slp.cde import CDE, apply_cde
from repro.slp.build import repair_node
from repro.slp.slp import SLP, DocumentDatabase
from repro.slp.spanner_eval import SLPSpannerEvaluator

__all__ = ["SpannerDB"]


class SpannerDB:
    """A compressed, incrementally editable, spanner-indexed document store."""

    def __init__(self) -> None:
        self._db = DocumentDatabase(SLP())
        self._spanners: dict[str, SLPSpannerEvaluator] = {}

    # ------------------------------------------------------------------
    # documents
    # ------------------------------------------------------------------
    @property
    def slp(self) -> SLP:
        return self._db.slp

    def add_document(self, name: str, text: str) -> None:
        """Ingest plain text: compress (Re-Pair), rebalance, store, and
        preprocess it for every registered spanner."""
        if not text:
            raise SLPError("documents must be non-empty")
        node = rebalance(self.slp, repair_node(self.slp, text))
        self._db.add_node(name, node)
        for evaluator in self._spanners.values():
            evaluator.preprocess(self.slp, node)

    def documents(self) -> list[str]:
        return self._db.names()

    def document_length(self, name: str) -> int:
        return self.slp.length(self._db.node(name))

    def document_text(self, name: str, limit: int = 10_000_000) -> str:
        """Decompress (guarded) — for debugging and small documents."""
        return self._db.document(name, limit)

    # ------------------------------------------------------------------
    # spanners
    # ------------------------------------------------------------------
    def register_spanner(self, name: str, spanner) -> None:
        """Register a spanner (regex-formula string, vset-automaton, or
        RegularSpanner) and preprocess all stored documents for it."""
        if name in self._spanners:
            raise SchemaError(f"spanner {name!r} already registered")
        if isinstance(spanner, str):
            spanner = spanner_from_regex(spanner)
        automaton = getattr(spanner, "automaton", spanner)
        evaluator = SLPSpannerEvaluator(automaton)
        for _, node in self._db.documents():
            evaluator.preprocess(self.slp, node)
        self._spanners[name] = evaluator

    def spanners(self) -> list[str]:
        return sorted(self._spanners)

    def _evaluator(self, spanner: str) -> SLPSpannerEvaluator:
        try:
            return self._spanners[spanner]
        except KeyError:
            raise SchemaError(f"no spanner named {spanner!r}") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, spanner: str, document: str) -> Iterator[SpanTuple]:
        """Stream ``⟦M⟧(D)`` from the compressed form (O(log |D|) delay)."""
        evaluator = self._evaluator(spanner)
        yield from evaluator.enumerate(self.slp, self._db.node(document))

    def evaluate(self, spanner: str, document: str) -> SpanRelation:
        evaluator = self._evaluator(spanner)
        return evaluator.evaluate(self.slp, self._db.node(document))

    def is_nonempty(self, spanner: str, document: str) -> bool:
        evaluator = self._evaluator(spanner)
        return evaluator.is_nonempty(self.slp, self._db.node(document))

    # ------------------------------------------------------------------
    # editing (the dynamic setting of [40])
    # ------------------------------------------------------------------
    def edit(self, new_name: str, expression: CDE) -> int:
        """Apply a CDE-expression, store the result as *new_name*, and
        update every registered spanner's structures for the fresh nodes.

        Returns the total number of fresh node-matrix computations across
        all spanners (the measurable O(k·log d) update cost)."""
        node = apply_cde(expression, self._db)
        self._db.add_node(new_name, node)
        fresh = 0
        for evaluator in self._spanners.values():
            fresh += evaluator.preprocess(self.slp, node)
        return fresh

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the store *in compressed form* (documents + sharing).

        Registered spanners are code, not data — re-register after load.
        """
        from repro.slp.serialize import dump_database

        with open(path, "w", encoding="utf-8") as stream:
            dump_database(self._db, stream)

    @classmethod
    def load(cls, path: str) -> "SpannerDB":
        """Load a store written by :meth:`save`."""
        from repro.slp.serialize import load_database

        with open(path, "r", encoding="utf-8") as stream:
            database = load_database(stream)
        store = cls()
        store._db = database
        return store

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Arena and index statistics (for dashboards and tests)."""
        nodes = {name: node for name, node in self._db.documents()}
        return {
            "documents": len(nodes),
            "spanners": len(self._spanners),
            "total_characters": sum(self.slp.length(n) for n in nodes.values()),
            "slp_nodes": self._db.size(),
            "cached_matrices": {
                name: evaluator.cached_nodes()
                for name, evaluator in self._spanners.items()
            },
        }
