"""`SpannerDB`: the integrated system of the paper's Section 4 narrative.

The dynamic setting of [40] is a *system*: an SLP-compressed document
database, a set of registered spanners M₁…M_k whose evaluation structures
are maintained, and a stream of complex document edits after which every
spanner stays immediately queryable.  This module is that system:

* documents are stored strongly balanced (compressed on ingest with
  Re-Pair, then rebalanced);
* registering a spanner compiles it once (deterministic eVA) and
  preprocesses the per-node matrices for every stored document —
  O(|S|·|Q|³) total, shared across documents through the arena;
* :meth:`SpannerDB.edit` applies a CDE-expression in O(|φ|·log d) and
  updates every registered spanner's matrices for the O(log d) fresh
  nodes only;
* :meth:`SpannerDB.query` streams results with O(log |D|) delay, and
  :meth:`SpannerDB.is_nonempty` answers without enumerating.

This is also the "adoption surface" of the library, and it is hardened
accordingly (see ``docs/RELIABILITY.md``):

* **transactional mutations** — :meth:`add_document`,
  :meth:`register_spanner`, and :meth:`edit` are atomic: staged SLP nodes,
  evaluator matrices, and catalog entries are rolled back together on any
  failure, and :meth:`transaction` batches several mutations with
  all-or-nothing semantics;
* **resource governance** — evaluation entry points accept a
  :class:`~repro.util.Budget` (wall-clock deadline, step budget,
  decompression-bomb guard);
* **crash-safe persistence** — :meth:`save` writes an atomic, checksummed
  snapshot; each committed mutation batch is appended to an fsync'd redo
  journal sealed by a commit marker; :meth:`open` recovers the last
  committed state after a crash, tolerating torn snapshot and journal
  writes, and replaying transactions all-or-nothing;
* **observability** — every entry point runs inside a :mod:`repro.obs`
  span (``db.query``, ``db.edit``, ``db.save``, ``db.open``, …), journal
  append latency and recovery replay statistics are recorded as metrics,
  budget exhaustion becomes a ``db.budget_exceeded`` event, and
  :meth:`stats` reports the live registry (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass
from typing import Iterator

from repro import obs
from repro.core.spans import SpanRelation, SpanTuple
from repro.errors import (
    DeadlineExceededError,
    EvaluationLimitError,
    JournalError,
    MemoryLimitError,
    PersistenceError,
    SchemaError,
    SLPError,
    SpanlibError,
    TransactionError,
)
from repro.kernels.plan import plan_cache
from repro.slp.balance import rebalance
from repro.slp.cde import CDE, apply_cde, format_cde, parse_cde
from repro.slp.build import repair_node
from repro.slp.slp import SLP, DocumentDatabase
from repro.slp.spanner_eval import SLPSpannerEvaluator

__all__ = ["SpannerDB"]

#: budget exhaustion errors that get surfaced as observability events
_BUDGET_ERRORS = (DeadlineExceededError, EvaluationLimitError, MemoryLimitError)


def _budget_event(op: str, exc: BaseException, budget) -> None:
    """Record a budget-exhaustion event (caller checks ``obs.enabled()``)."""
    registry = obs.metrics()
    registry.counter("db.budget_exceeded").inc()
    registry.counter(f"db.budget_exceeded.{type(exc).__name__}").inc()
    obs.tracer().event(
        "db.budget_exceeded",
        op=op,
        error=type(exc).__name__,
        steps=getattr(budget, "steps", None),
    )


def _fsync_dir(path: str) -> None:
    """fsync the directory containing *path*.

    On POSIX a rename or file creation is durable only once the containing
    directory's metadata reaches disk; without this a committed
    :meth:`SpannerDB.save` could vanish entirely on power loss.  Platforms
    whose directories cannot be opened (e.g. Windows) skip silently."""
    directory = os.path.dirname(os.path.abspath(path)) or os.sep
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass
class _Checkpoint:
    """Everything needed to undo a (possibly nested) transaction scope."""

    arena_mark: int
    docs: dict[str, int]
    spanners: dict[str, SLPSpannerEvaluator]
    sources: dict[str, str]
    pending: int


class SpannerDB:
    """A compressed, incrementally editable, spanner-indexed document store."""

    def __init__(self) -> None:
        self._db = DocumentDatabase(SLP())
        self._spanners: dict[str, SLPSpannerEvaluator] = {}
        #: regex source text per spanner registered from a string — what
        #: the process backend ships to workers so they can compile their
        #: own (deterministic, hence bit-identical) evaluator; spanners
        #: registered from automaton objects have no entry and fall back
        #: to the thread backend under ``backend="auto"``
        self._spanner_sources: dict[str, str] = {}
        #: attached journal file (set by save/open); None = not persistent
        self._journal_path: str | None = None
        #: open transaction checkpoints, innermost last
        self._txn: list[_Checkpoint] = []
        #: encoded journal records awaiting the outermost commit
        self._pending: list[str] = []
        #: set when a journal append failed partway: the torn tail would
        #: hide any later append from recovery, so commits are refused
        #: until :meth:`save` rewrites the journal
        self._journal_poisoned = False
        #: replay statistics from the last :meth:`open` (None for a store
        #: that was never recovered from disk)
        self._recovery: dict | None = None

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def transaction(self) -> Iterator["SpannerDB"]:
        """All-or-nothing scope for a batch of mutations.

        ::

            with db.transaction():
                db.add_document("d", text)
                db.edit("d2", Delete(Doc("d"), 1, 10))

        On any exception the arena, the per-spanner matrices, the document
        catalog, and the pending journal records are restored to the state
        at entry, and the exception propagates.  On success, the batched
        journal records plus a commit marker sealing them become durable in
        one append — recovery replays the batch all-or-nothing, and if the
        append itself fails the whole batch rolls back in memory too.
        Transactions nest: inner scopes roll back to their own entry point;
        records only reach the journal when the outermost scope commits.

        Every single mutation runs in its own (auto-)transaction, so a bare
        ``db.edit(...)`` is atomic too.
        """
        self._begin()
        try:
            yield self
        except BaseException:
            self._rollback()
            raise
        else:
            self._commit()

    def _begin(self) -> None:
        self._txn.append(
            _Checkpoint(
                arena_mark=self.slp.mark(),
                docs=dict(self._db._docs),
                spanners=dict(self._spanners),
                sources=dict(self._spanner_sources),
                pending=len(self._pending),
            )
        )

    def _commit(self) -> None:
        if not self._txn:
            raise TransactionError("commit without a matching begin")
        if len(self._txn) > 1:
            self._txn.pop()
            return  # inner scope: defer durability to the outermost commit
        # Outermost scope: make the batch durable *before* discarding the
        # checkpoint, so a failed append (ENOSPC, I/O error, injected
        # fault) rolls the mutation back instead of acknowledging a commit
        # the journal never recorded.  The batch is sealed with a commit
        # marker written in the same append: recovery applies it
        # all-or-nothing, never a torn prefix.
        if self._pending:
            from repro.slp.serialize import encode_commit_marker

            lines = self._pending + [encode_commit_marker(len(self._pending))]
            try:
                self._journal_write("".join(line + "\n" for line in lines))
            except BaseException:
                self._journal_poisoned = True
                self._rollback()
                raise
        self._txn.pop()
        self._pending.clear()

    def _rollback(self) -> None:
        if not self._txn:
            raise TransactionError("rollback without a matching begin")
        cp = self._txn.pop()
        del self._pending[cp.pending:]
        self._db._docs = cp.docs
        self._spanners = cp.spanners
        self._spanner_sources = cp.sources
        # invalidate caches *before* truncating: ids >= mark will be reused
        for evaluator in self._spanners.values():
            evaluator.invalidate_from(self.slp, cp.arena_mark)
        self.slp.truncate(cp.arena_mark)

    def _journal_record(self, *fields: str) -> None:
        """Stage one redo record; it becomes durable at outermost commit."""
        if self._journal_path is None:
            return
        from repro.slp.serialize import encode_journal_record

        self._pending.append(encode_journal_record(fields))

    def _journal_write(self, payload: str) -> None:
        """Append *payload* to the journal and force it to disk.

        This is the durability point of a commit — and the injection point
        :func:`repro.util.faults.truncate_journal_write` tears to simulate
        a crash mid-append."""
        assert self._journal_path is not None
        if self._journal_poisoned:
            raise PersistenceError(
                "journal has a torn tail from an earlier failed append; "
                "call save() to checkpoint before committing further mutations"
            )
        observing = obs.enabled()
        t0 = time.perf_counter_ns() if observing else 0
        with open(self._journal_path, "a", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        if observing:
            registry = obs.metrics()
            registry.histogram("db.journal.append_ns").record(
                time.perf_counter_ns() - t0
            )
            registry.counter("db.journal.appends").inc()
            registry.counter("db.journal.bytes").inc(len(payload))

    # ------------------------------------------------------------------
    # documents
    # ------------------------------------------------------------------
    @property
    def slp(self) -> SLP:
        return self._db.slp

    def add_document(self, name: str, text: str, budget=None) -> None:
        """Ingest plain text: compress (Re-Pair), rebalance, store, and
        preprocess it for every registered spanner.

        Atomic: if any step fails — including a preprocess failure for one
        of several registered spanners — the staged SLP nodes, the document
        entry, and any partially computed matrices are all rolled back."""
        if not text:
            raise SLPError("documents must be non-empty")
        with obs.tracer().span("db.add_document", document=name, chars=len(text)):
            try:
                with self.transaction():
                    node = rebalance(self.slp, repair_node(self.slp, text))
                    self._db.add_node(name, node)
                    for evaluator in self._spanners.values():
                        evaluator.preprocess(self.slp, node, budget)
                    self._journal_record("A", name, text)
            except _BUDGET_ERRORS as exc:
                if obs.enabled():
                    _budget_event("add_document", exc, budget)
                raise

    def documents(self) -> list[str]:
        return self._db.names()

    def document_length(self, name: str) -> int:
        return self.slp.length(self._db.node(name))

    def document_text(self, name: str, limit: int = 10_000_000, budget=None) -> str:
        """Decompress (guarded) — for debugging and small documents.

        The *limit* guard raises :class:`~repro.errors.SLPError`; a
        :class:`~repro.util.Budget` with ``max_bytes`` additionally raises
        :class:`~repro.errors.MemoryLimitError` (the decompression-bomb
        guard, since SLP documents can be exponentially long)."""
        node = self._db.node(name)
        if budget is not None:
            budget.charge_bytes(
                self.slp.length(node), what=f"decompressing document {name!r}"
            )
        return self._db.document(name, limit)

    # ------------------------------------------------------------------
    # spanners
    # ------------------------------------------------------------------
    def register_spanner(self, name: str, spanner, budget=None) -> None:
        """Register a spanner (regex-formula string, vset-automaton, or
        RegularSpanner) and preprocess all stored documents for it.

        Atomic: a preprocess failure on the n-th stored document leaves no
        half-registered spanner and no orphan matrices."""
        if name in self._spanners:
            raise SchemaError(f"spanner {name!r} already registered")
        if isinstance(spanner, str):
            # string sources go through the shared plan cache: repeated
            # registrations of one regex (across stores or service threads)
            # compile and determinize once and share one evaluator, whose
            # per-arena matrix caches keep stores isolated
            evaluator = plan_cache().get_or_compile(spanner).evaluator
        else:
            automaton = getattr(spanner, "automaton", spanner)
            evaluator = SLPSpannerEvaluator(automaton)
        with obs.tracer().span("db.register_spanner", spanner=name):
            try:
                with self.transaction():
                    for _, node in self._db.documents():
                        evaluator.preprocess(self.slp, node, budget)
                    self._spanners[name] = evaluator
                    if isinstance(spanner, str):
                        self._spanner_sources[name] = spanner
            except _BUDGET_ERRORS as exc:
                if obs.enabled():
                    _budget_event("register_spanner", exc, budget)
                raise

    def spanners(self) -> list[str]:
        return sorted(self._spanners)

    def _evaluator(self, spanner: str) -> SLPSpannerEvaluator:
        try:
            return self._spanners[spanner]
        except KeyError:
            raise SchemaError(f"no spanner named {spanner!r}") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, spanner: str, document: str, budget=None) -> Iterator[SpanTuple]:
        """Stream ``⟦M⟧(D)`` from the compressed form (O(log |D|) delay).

        With a :class:`~repro.util.Budget`, enumeration over pathological
        (e.g. exponential-length) documents terminates at the deadline or
        step limit with a clean typed error.  With :mod:`repro.obs`
        enabled, the stream runs inside a ``db.query`` span and budget
        exhaustion is recorded as a ``db.budget_exceeded`` event."""
        evaluator = self._evaluator(spanner)
        stream = evaluator.enumerate(self.slp, self._db.node(document), budget)
        if not obs.enabled():
            yield from stream
            return
        produced = 0
        with obs.tracer().span("db.query", spanner=spanner, document=document) as span:
            try:
                for tup in stream:
                    produced += 1
                    yield tup
            except _BUDGET_ERRORS as exc:
                _budget_event("query", exc, budget)
                raise
            finally:
                span.attrs["tuples"] = produced

    def evaluate(self, spanner: str, document: str, budget=None) -> SpanRelation:
        evaluator = self._evaluator(spanner)
        return evaluator.evaluate(self.slp, self._db.node(document), budget)

    def query_decompressed(self, spanner: str, document: str, budget=None) -> SpanRelation:
        """Evaluate *spanner* on the **decompressed** text of *document*.

        The graceful-degradation path of :mod:`repro.serve`: when the
        circuit breaker around the compressed evaluator is open, queries
        fall back here — same results (asserted by the differential fuzz
        suite), worse latency, service up.  It shares nothing with the
        compressed path except the compiled automaton: no SLP matrices are
        read or written, so a fault or poisoned cache on the compressed
        side cannot leak into degraded answers.

        The budget's ``max_bytes`` guard is charged for the decompression
        (SLP documents can be exponentially long) and its step/deadline
        allowances govern the text-side dynamic program."""
        evaluator = self._evaluator(spanner)
        node = self._db.node(document)
        if budget is not None:
            budget.charge_bytes(
                self.slp.length(node),
                what=f"decompressing document {document!r} for degraded evaluation",
            )
        with obs.tracer().span(
            "db.query_decompressed", spanner=spanner, document=document
        ) as span:
            try:
                text = self._db.document(document)
                relation = evaluator.evaluate_text(text, budget)
                if obs.enabled():
                    span.attrs["tuples"] = len(relation)
                    obs.metrics().counter("db.query_decompressed").inc()
                return relation
            except _BUDGET_ERRORS as exc:
                if obs.enabled():
                    _budget_event("query_decompressed", exc, budget)
                raise

    def is_nonempty(self, spanner: str, document: str, budget=None) -> bool:
        evaluator = self._evaluator(spanner)
        return evaluator.is_nonempty(self.slp, self._db.node(document), budget)

    def document_node(self, name: str) -> int:
        """The SLP root node of a stored document (for evaluator reuse by
        the query layer and other engine-level callers)."""
        return self._db.node(name)

    def query_expr(
        self, expression: str, document: str | None = None, budget=None
    ) -> SpanRelation:
        """Evaluate a :mod:`repro.query` algebra expression on this store.

        One-shot convenience over :class:`repro.query.executor.QuerySession`
        (which is what the REPL and :mod:`repro.serve` keep alive between
        statements to accumulate bindings and planner statistics); the
        compiled subplans still land in the shared plan cache, so repeated
        one-shot calls of the same expression stay warm."""
        from repro.query.executor import QuerySession

        with obs.tracer().span(
            "db.query_expr", expression=expression, document=document
        ) as span:
            try:
                session = QuerySession(self, budget=budget)
                relation = session.evaluate(expression, document, budget)
                if obs.enabled():
                    span.attrs["tuples"] = len(relation)
                return relation
            except _BUDGET_ERRORS as exc:
                if obs.enabled():
                    _budget_event("query_expr", exc, budget)
                raise

    def query_bulk(
        self,
        spanner: str,
        documents,
        *,
        workers: int | None = None,
        backend: str = "auto",
        budget=None,
    ) -> dict:
        """Evaluate *spanner* on many stored documents at once.

        One spanner lookup is amortised across the whole batch, and the
        per-document matrix preprocessing fans out over a
        :mod:`repro.parallel` worker pool (workers run the pure wave
        computation against the shared node cache; results merge on this
        thread, so cache mutation stays single-threaded).  The final
        relations are materialised serially from the warmed cache.

        *backend* is ``"auto"`` by default: multi-core hosts with a
        string-registered spanner fan out to the crash-isolated process
        pool (the arena ships as a shared-memory snapshot and workers
        compile the spanner from its source — bit-identical matrices);
        everything else, and any host where the process path's circuit
        breaker is open, uses threads.  ``"thread"``, ``"process"``, and
        ``"serial"`` force a specific backend.

        Returns ``{document: SpanRelation}`` in input order.  Results are
        identical to calling :meth:`evaluate` per document — the
        differential test suite asserts this across backends and worker
        counts.  A shared :class:`~repro.util.Budget` governs the whole
        batch, fan-out included."""
        from repro.parallel import preprocess_bulk

        names = list(documents)
        evaluator = self._evaluator(spanner)
        nodes = [self._db.node(name) for name in names]
        # the fallback admission point: a bulk query arriving outside
        # repro.serve still gets a trace id, so worker-side spans stitch
        # under this request even without the service layer
        ctx = None
        if obs.enabled() and obs.current_context() is None:
            ctx = obs.new_trace()
        with obs.use_context(ctx), obs.tracer().span(
            "db.query_bulk", spanner=spanner, documents=len(names)
        ) as span:
            try:
                fresh = preprocess_bulk(
                    evaluator,
                    self.slp,
                    nodes,
                    workers=workers,
                    backend=backend,
                    budget=budget,
                    source=self._spanner_sources.get(spanner),
                )
                relations = {
                    name: evaluator.evaluate(self.slp, node, budget)
                    for name, node in zip(names, nodes)
                }
                if obs.enabled():
                    span.attrs["fresh_matrices"] = fresh
                    obs.metrics().counter("db.query_bulk").inc()
                return relations
            except _BUDGET_ERRORS as exc:
                if obs.enabled():
                    _budget_event("query_bulk", exc, budget)
                raise

    # ------------------------------------------------------------------
    # editing (the dynamic setting of [40])
    # ------------------------------------------------------------------
    def edit(self, new_name: str, expression: CDE, budget=None) -> int:
        """Apply a CDE-expression, store the result as *new_name*, and
        update every registered spanner's structures for the fresh nodes.

        Returns the total number of fresh node-matrix computations across
        all spanners (the measurable O(k·log d) update cost).  Atomic: a
        failure at any point — CDE application, catalog insert, or matrix
        update for any spanner — rolls the store back to its prior state."""
        with obs.tracer().span("db.edit", document=new_name) as span:
            try:
                with self.transaction():
                    node = apply_cde(expression, self._db, budget)
                    self._db.add_node(new_name, node)
                    fresh = 0
                    for evaluator in self._spanners.values():
                        fresh += evaluator.preprocess(self.slp, node, budget)
                    self._journal_record("E", new_name, format_cde(expression))
                    if obs.enabled():
                        span.attrs["fresh_matrices"] = fresh
                        obs.metrics().counter("db.edit.fresh_matrices").inc(fresh)
                    return fresh
            except _BUDGET_ERRORS as exc:
                if obs.enabled():
                    _budget_event("edit", exc, budget)
                raise

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the store *in compressed form* as an atomic, checksummed
        snapshot, and reset the attached edit journal.

        Write protocol: snapshot to ``path + ".tmp"`` and fsync; demote any
        existing snapshot to ``path + ".bak"``; rename the fresh snapshot
        into place (atomic on POSIX) and fsync the containing directory so
        the rename survives power loss; truncate the journal.  A crash at
        any point leaves either the old or the new snapshot loadable — torn
        writes are detected by checksum and :meth:`open` falls back to the
        ``.bak`` copy.  A successful save also re-arms a journal poisoned
        by an earlier failed append.

        Raises :class:`~repro.errors.TransactionError` inside an open
        :meth:`transaction`: the snapshot would capture uncommitted staged
        state that a later rollback could not undo on disk.

        Registered spanners are code, not data — re-register after load.
        """
        from repro.slp.serialize import dump_snapshot

        if self._txn:
            raise TransactionError(
                "save() inside an open transaction would snapshot "
                "uncommitted state; commit or roll back first"
            )
        with obs.tracer().span("db.save", path=path):
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as stream:
                dump_snapshot(self._db, stream)
                stream.flush()
                os.fsync(stream.fileno())
            if os.path.exists(path):
                os.replace(path, path + ".bak")
            os.replace(tmp, path)
            _fsync_dir(path)
            self._journal_path = path + ".journal"
            self._reset_journal()
            self._journal_poisoned = False
            if obs.enabled():
                obs.metrics().counter("db.saves").inc()

    def _reset_journal(self) -> None:
        from repro.slp.serialize import JOURNAL_MAGIC

        assert self._journal_path is not None
        with open(self._journal_path, "w", encoding="utf-8") as handle:
            handle.write(JOURNAL_MAGIC + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_dir(self._journal_path)

    @classmethod
    def open(cls, path: str) -> "SpannerDB":
        """Open (or create) a persistent store, recovering committed state.

        Recovery procedure:

        1. load the snapshot at *path*; if it is torn or corrupt
           (checksum mismatch), fall back to ``path + ".bak"``;
        2. replay the edit journal ``path + ".journal"`` batch by batch,
           applying only batches sealed by an intact commit marker (a
           crash mid-append loses the in-flight batch whole — never a
           prefix of a transaction, never earlier commits) — and stopping
           at the first record that no longer applies (after a fall back
           to the older ``.bak`` snapshot, tail records may reference
           documents that only the torn snapshot contained: replay is
           best-effort);
        3. if anything was replayed or the journal was torn, checkpoint:
           write a fresh snapshot and truncate the journal.

        The returned store is *attached*: every committed mutation is
        appended to the journal (fsync'd), so a later :meth:`open` after a
        crash recovers it.  Spanners are code, not data — re-register them.
        """
        from repro.slp.serialize import read_journal

        with obs.tracer().span("db.open", path=path) as span:
            store = cls()
            database, used_fallback = cls._load_snapshot_with_fallback(path)
            if database is not None:
                store._db = database

            journal_path = path + ".journal"
            records: list[list[str]] = []
            clean = True
            if os.path.exists(journal_path):
                with open(journal_path, "r", encoding="utf-8") as stream:
                    records, clean = read_journal(stream)
                replayed = []
                for record in records:
                    try:
                        store._apply_journal_record(record)
                    except JournalError:
                        # best-effort: everything past an inapplicable record
                        # is untrusted (see step 2 above)
                        clean = False
                        break
                    replayed.append(record)
                records = replayed

            store._journal_path = journal_path
            store._recovery = {
                "replayed_records": len(records),
                "journal_clean": clean,
                "used_fallback_snapshot": used_fallback,
            }
            if obs.enabled():
                registry = obs.metrics()
                registry.counter("db.recovery.replayed_records").inc(len(records))
                if not clean:
                    registry.counter("db.recovery.torn_journals").inc()
                if used_fallback:
                    registry.counter("db.recovery.fallback_snapshots").inc()
                span.attrs.update(store._recovery)
            if records or not clean or used_fallback:
                # checkpoint the recovered state and truncate the torn journal
                store.save(path)
            elif not os.path.exists(journal_path):
                store._reset_journal()
            return store

    @staticmethod
    def _load_snapshot_with_fallback(path: str):
        """(database, used_fallback) — or (None, False) for a fresh store."""
        from repro.slp.serialize import load_database

        primary_error: SpanlibError | None = None
        for candidate, is_fallback in ((path, False), (path + ".bak", True)):
            if not os.path.exists(candidate):
                continue
            try:
                with open(candidate, "r", encoding="utf-8") as stream:
                    return load_database(stream), is_fallback
            except SpanlibError as exc:
                if primary_error is None:
                    primary_error = exc
        if primary_error is not None:
            raise PersistenceError(
                f"no loadable snapshot for {path!r} "
                f"(primary and fallback both unreadable: {primary_error})"
            )
        return None, False

    def _apply_journal_record(self, record: list[str]) -> None:
        """Replay one committed mutation during recovery.

        Idempotent with respect to the snapshot: records whose target
        document already exists are skipped (a crash between snapshot
        rotation and journal truncation in :meth:`save` leaves already
        applied records behind)."""
        kind = record[0] if record else ""
        try:
            if kind == "A" and len(record) == 3:
                if record[1] not in self._db:
                    self.add_document(record[1], record[2])
            elif kind == "E" and len(record) == 3:
                if record[1] not in self._db:
                    self.edit(record[1], parse_cde(record[2]))
            else:
                raise JournalError(f"unknown journal record {record!r}")
        except JournalError:
            raise
        except SpanlibError as exc:
            raise JournalError(
                f"journal record {record!r} cannot be replayed: {exc}"
            ) from exc

    @classmethod
    def load(cls, path: str) -> "SpannerDB":
        """Load a snapshot written by :meth:`save` (either format version),
        *without* attaching the journal — a read-only-style load kept for
        backwards compatibility; prefer :meth:`open`."""
        from repro.slp.serialize import load_database

        with open(path, "r", encoding="utf-8") as stream:
            database = load_database(stream)
        store = cls()
        store._db = database
        return store

    # ------------------------------------------------------------------
    def _journal_records(self) -> int | None:
        """Number of record lines in the attached journal (``None`` when
        not persistent or the journal file is missing)."""
        if self._journal_path is None or not os.path.exists(self._journal_path):
            return None
        with open(self._journal_path, "r", encoding="utf-8") as handle:
            # first line is the magic header; the rest are records/markers
            return max(0, sum(1 for _ in handle) - 1)

    def stats(self) -> dict:
        """Arena, index, persistence, and live-metrics statistics.

        Diagnostic enough to answer "why is this store big / slow": the
        SLP arena footprint in bytes, per-spanner evaluator-cache entry
        counts / resident bytes / sealed-root counts (each O(1) via the
        per-arena index — no cache scans), the journal backlog since the
        last checkpoint, the last recovery's replay stats, and — when
        :mod:`repro.obs` is enabled — a snapshot of the live metrics
        registry."""
        nodes = {name: node for name, node in self._db.documents()}
        # evaluators may be shared across stores via the plan cache, so
        # counts are scoped to this store's arena
        per_spanner = {
            name: evaluator.arena_cache_stats(self.slp.serial)
            for name, evaluator in self._spanners.items()
        }
        return {
            "documents": len(nodes),
            "spanners": len(self._spanners),
            "total_characters": sum(self.slp.length(n) for n in nodes.values()),
            "slp_nodes": self._db.size(),
            "slp_arena_bytes": self.slp.arena_bytes(),
            "cached_matrices": {
                name: stats["entries"] for name, stats in per_spanner.items()
            },
            "spanner_caches": per_spanner,
            "evaluator_cache_entries": sum(
                stats["entries"] for stats in per_spanner.values()
            ),
            "evaluator_cache_bytes": sum(
                stats["bytes"] for stats in per_spanner.values()
            ),
            "plan_cache": plan_cache().stats(),
            "journal": self._journal_path,
            "journal_records": self._journal_records(),
            "recovery": self._recovery,
            "open_transactions": len(self._txn),
            "observability_enabled": obs.enabled(),
            "metrics": obs.metrics().snapshot() if obs.enabled() else None,
        }
